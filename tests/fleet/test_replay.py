"""Traffic generator, recorded corpora, and the replay gate.

The recorded gate at the bottom mirrors
``tests/service/test_static_burst.py``: a corpus checked into
``tests/fleet/data/`` is replayed against a live 3-replica fleet at
``--jobs 1`` and ``--jobs 4``, and every body must be byte-identical
to the single-process offline oracle — and to each other.
"""

import json
import os

import pytest

from repro.errors import ExperimentError
from repro.fleet import (
    make_population,
    make_zipf_frames,
    load_burst,
    oracle_bodies,
    record_burst,
    replay_frames,
    verify_replay,
)
from repro.fleet.fabric import Fleet
from repro.service.client import offline_response
from repro.service.protocol import canonicalize

DATA = os.path.join(os.path.dirname(__file__), "data",
                    "fleet_burst.ndjson")


class OfflineClient:
    """A serverless client: replay plumbing without sockets."""

    def request(self, kind, params):
        return offline_response(kind, params)

    def close(self):
        pass


class TestGenerator:
    def test_same_seed_same_frames(self):
        a = make_zipf_frames(200, seed=7)
        b = make_zipf_frames(200, seed=7)
        assert a == b
        assert make_zipf_frames(200, seed=8) != a

    def test_frames_are_independent_dicts(self):
        frames = make_zipf_frames(50, seed=3)
        frames[0]["params"]["kernel"] = "mutated"
        assert make_zipf_frames(50, seed=3)[0]["params"][
            "kernel"] != "mutated"

    def test_every_frame_canonicalizes(self):
        for frame in make_zipf_frames(100, seed=11,
                                      kinds=("advise", "bound")):
            request = canonicalize(frame["kind"],
                                   dict(frame["params"]))
            assert request.key

    def test_zipf_skew_concentrates_on_a_hot_head(self):
        frames = make_zipf_frames(400, seed=1993)
        counts = {}
        for frame in frames:
            key = canonicalize(frame["kind"],
                               dict(frame["params"])).key
            counts[key] = counts.get(key, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # Far fewer distinct keys than frames, and the hottest key
        # alone beats the uniform share by a wide margin.
        assert len(ranked) < len(frames) // 2
        assert ranked[0] > 3 * (len(frames) / len(ranked))

    def test_population_crosses_kinds_kernels_variants(self):
        population = make_population(
            kinds=("advise",), kernels=("lfk1", "lfk2"),
            variants=("default", "reuse"),
        )
        assert len(population) == 4
        with pytest.raises(ExperimentError):
            make_population(kinds=(), kernels=("lfk1",))

    def test_count_is_validated(self):
        with pytest.raises(ExperimentError):
            make_zipf_frames(0, seed=1)


class TestRecordedCorpora:
    def test_record_load_roundtrip(self, tmp_path):
        frames = make_zipf_frames(30, seed=5,
                                  kinds=("advise", "bound"))
        path = str(tmp_path / "burst.ndjson")
        record_burst(path, frames)
        assert load_burst(path) == frames
        # Deterministic bytes: recording again is a no-op diff.
        with open(path, encoding="utf-8") as handle:
            first = handle.read()
        record_burst(path, frames)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == first

    def test_record_rejects_invalid_frames(self, tmp_path):
        path = str(tmp_path / "bad.ndjson")
        with pytest.raises(ExperimentError):
            record_burst(
                path, [{"kind": "no-such-kind", "params": {}}]
            )

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "torn.ndjson"
        path.write_text('{"kind": "advise", "params": {"kernel": '
                        '"lfk1"}}\n{not json\n')
        with pytest.raises(ExperimentError, match="malformed"):
            load_burst(str(path))

    def test_load_rejects_empty_and_kindless(self, tmp_path):
        empty = tmp_path / "empty.ndjson"
        empty.write_text("\n\n")
        with pytest.raises(ExperimentError, match="empty"):
            load_burst(str(empty))
        kindless = tmp_path / "kindless.ndjson"
        kindless.write_text('{"params": {}}\n')
        with pytest.raises(ExperimentError, match="'kind'"):
            load_burst(str(kindless))

    def test_checked_in_corpus_is_loadable_and_skewed(self):
        frames = load_burst(DATA)
        assert len(frames) == 120
        kinds = {frame["kind"] for frame in frames}
        assert kinds == {"advise", "bound"}
        # Regenerates bit-identically from its seed.
        assert frames == make_zipf_frames(
            120, seed=1993, kinds=("advise", "bound")
        )


class TestReplayMachinery:
    def test_offline_replay_matches_oracle_at_any_jobs(self):
        frames = make_zipf_frames(40, seed=21)
        oracle = oracle_bodies(frames)
        serial = replay_frames(frames, OfflineClient, jobs=1)
        fanned = replay_frames(frames, OfflineClient, jobs=4)
        assert verify_replay(frames, serial, oracle) == []
        assert verify_replay(frames, fanned, oracle) == []
        assert serial.bodies == fanned.bodies
        assert serial.frames == fanned.frames == 40
        assert serial.throughput_rps > 0

    def test_jobs_validation_and_clamp(self):
        frames = make_zipf_frames(3, seed=1)
        with pytest.raises(ExperimentError):
            replay_frames(frames, OfflineClient, jobs=0)
        report = replay_frames(frames, OfflineClient, jobs=16)
        assert report.jobs == 3  # clamped to the frame count

    def test_transport_errors_are_recorded_not_raised(self):
        class DeadClient:
            def request(self, kind, params):
                raise ExperimentError("no route to fleet")

            def close(self):
                pass

        frames = make_zipf_frames(5, seed=2)
        report = replay_frames(frames, DeadClient, jobs=2)
        assert len(report.errors) == 5
        assert report.statuses == ["transport-error"] * 5
        mismatches = verify_replay(frames, report)
        assert len(mismatches) == 5

    def test_verify_catches_a_corrupted_body(self):
        frames = make_zipf_frames(10, seed=9)
        report = replay_frames(frames, OfflineClient, jobs=1)
        assert verify_replay(frames, report) == []
        tampered = json.loads(report.bodies[4])
        tampered["corrupted"] = True
        report.bodies[4] = json.dumps(tampered, sort_keys=True)
        mismatches = verify_replay(frames, report)
        assert [m["frame"] for m in mismatches] == [4]
        assert mismatches[0]["got"] != mismatches[0]["expected"]

    def test_verify_rejects_mismatched_oracle_length(self):
        frames = make_zipf_frames(4, seed=9)
        report = replay_frames(frames, OfflineClient, jobs=1)
        with pytest.raises(ExperimentError):
            verify_replay(frames, report, oracle=["only-one"])

    def test_oracle_computes_each_distinct_key_once(self):
        frames = [
            {"kind": "advise", "params": {"kernel": "lfk1"}},
            {"kind": "advise", "params": {"kernel": "lfk2"}},
            {"kind": "advise", "params": {"kernel": "lfk1"}},
        ]
        bodies = oracle_bodies(frames)
        assert bodies[0] == bodies[2]
        assert bodies[0] != bodies[1]


class TestRecordedGate:
    """The corpus gate: 1-vs-N replicas, 1-vs-N lanes, same bytes."""

    @pytest.fixture(scope="class")
    def frames(self):
        return load_burst(DATA)

    @pytest.fixture(scope="class")
    def oracle(self, frames):
        return oracle_bodies(frames)

    def test_recorded_burst_replays_byte_identically(
            self, tmp_path_factory, frames, oracle):
        root = tmp_path_factory.mktemp("fleet-gate")
        fleet = Fleet(str(root), 3, mode="thread").start()
        try:
            serial = replay_frames(frames, fleet.client, jobs=1)
            fanned = replay_frames(frames, fleet.client, jobs=4)
        finally:
            fleet.stop()
        assert serial.errors == []
        assert fanned.errors == []
        assert verify_replay(frames, serial, oracle) == []
        assert verify_replay(frames, fanned, oracle) == []
        assert serial.bodies == fanned.bodies
