"""Fleet-wide single-flight: N duplicates, one computation.

Two layers prove it:

* **owner routing** — every duplicate of a key routes to the same
  replica, whose per-process single-flight collapses them: 3 clients
  x 100 duplicate requests across 3 replicas must produce exactly one
  worker computation, fleet-wide;
* **shard-owner leases** — when routing *doesn't* protect a key (two
  clients pinned to two different replicas ask for the same key
  concurrently), the L2 lease does: the loser follows the winner's
  published body instead of recomputing.
"""

import threading

from repro.fleet.fabric import Fleet
from repro.service.client import ServiceClient, offline_response

CLIENTS = 3
DUPLICATES = 100


def shard_counter(metrics_body, shard, name):
    return metrics_body.get("shards", {}).get(shard, {}).get(name, 0)


class TestOwnerRouting:
    def test_300_duplicates_one_worker_computation(self, tmp_path):
        """3 clients x 100 duplicates x 3 replicas -> 1 job."""
        fleet = Fleet(str(tmp_path), 3, mode="thread").start()
        try:
            results = [None] * CLIENTS
            barrier = threading.Barrier(CLIENTS)

            def storm(index):
                client = fleet.client()
                try:
                    barrier.wait(timeout=30.0)
                    results[index] = client.request_many(
                        [("bound", {"kernel": "lfk8"})] * DUPLICATES
                    )
                finally:
                    client.close()

            threads = [
                threading.Thread(target=storm, args=(i,))
                for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)

            oracle = offline_response(
                "bound", {"kernel": "lfk8"}
            ).canonical_text()
            for responses in results:
                assert responses is not None
                assert len(responses) == DUPLICATES
                for response in responses:
                    assert response.ok
                    assert response.canonical_text() == oracle

            # The crux: one computation in the whole fleet.
            computed = 0
            jobs = 0
            for name, replica in fleet.replicas.items():
                body = fleet.metrics(name)
                computed += body["computed"]
                computed += shard_counter(
                    body, name, "static_answers"
                )
                jobs += replica.thread.server.pool.jobs_submitted
            assert computed == 1
            assert jobs == 1
            # Everything else was a cache hit or coalesced join on
            # the one owner replica.
            served = sum(
                fleet.metrics(name)["cache_hits"]
                + fleet.metrics(name)["coalesced"]
                for name in fleet.replicas
            )
            assert served == CLIENTS * DUPLICATES - 1
        finally:
            fleet.stop()


class TestShardOwnerLease:
    def test_cross_replica_duplicates_coalesce_via_the_lease(
            self, tmp_path):
        """Two replicas, same key, at once: one computes, one follows."""
        fleet = Fleet(
            str(tmp_path), 2, mode="thread", lease_ttl_s=30.0
        ).start()
        try:
            topology = fleet.topology()
            bodies = {}
            barrier = threading.Barrier(2)

            def pinned(name):
                # Straight to one replica: no ring routing involved,
                # so only the lease can prevent a double compute.
                with ServiceClient(topology[name],
                                   timeout=60.0) as conn:
                    barrier.wait(timeout=30.0)
                    response = conn.request(
                        "bound", {"kernel": "tridiag_rhs"}
                    )
                    assert response.ok, response.error
                    bodies[name] = response.canonical_text()

            threads = [
                threading.Thread(target=pinned, args=(name,))
                for name in topology
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)

            assert len(set(bodies.values())) == 1
            oracle = offline_response(
                "bound", {"kernel": "tridiag_rhs"}
            ).canonical_text()
            assert set(bodies.values()) == {oracle}

            computed, followed, l2_hits = 0, 0, 0
            for name in topology:
                body = fleet.metrics(name)
                computed += body["computed"]
                followed += shard_counter(
                    body, name, "fleet_coalesced"
                )
                l2_hits += shard_counter(body, name, "l2_hits")
            assert computed == 1
            # The second replica either followed the lease or (if it
            # arrived after publication) hit the shared L2 directly.
            assert followed + l2_hits == 1
        finally:
            fleet.stop()
