"""Fleet lifecycle tests: thread and process modes, partition."""

import os

import pytest

from repro.errors import ExperimentError
from repro.fleet.fabric import Fleet
from repro.service.client import ServiceClient, offline_response


class TestThreadMode:
    def test_start_topology_stop(self, tmp_path):
        fleet = Fleet(str(tmp_path), 3, mode="thread").start()
        try:
            topology = fleet.topology()
            assert sorted(topology) == [
                "replica-0", "replica-1", "replica-2"
            ]
            assert len(set(topology.values())) == 3
            for name, endpoint in topology.items():
                assert endpoint.startswith("unix:")
                with ServiceClient(endpoint, timeout=10.0) as conn:
                    assert conn.ping()
                health = fleet.healthz(name)
                assert health["status"] == "ok"
        finally:
            fleet.stop()

    def test_replicas_share_one_l2(self, tmp_path):
        fleet = Fleet(str(tmp_path), 2, mode="thread").start()
        try:
            assert fleet.l2_root is not None
            topology = fleet.topology()
            with ServiceClient(topology["replica-0"],
                               timeout=10.0) as conn:
                first = conn.request("advise", {"kernel": "lfk4"})
            assert first.ok
            # The *other* replica serves the same key warm from the
            # shared L2 — it never computed it.
            with ServiceClient(topology["replica-1"],
                               timeout=10.0) as conn:
                second = conn.request("advise", {"kernel": "lfk4"})
            assert second.ok
            assert second.origin == "cache"
            assert second.canonical_text() == first.canonical_text()
            shards = fleet.metrics("replica-1")["shards"]
            assert shards["replica-1"]["l2_hits"] == 1
        finally:
            fleet.stop()

    def test_partition_is_abrupt_and_idempotent(self, tmp_path):
        fleet = Fleet(str(tmp_path), 2, mode="thread").start()
        try:
            endpoint = fleet.topology()["replica-0"]
            conn = ServiceClient(endpoint, timeout=5.0).connect()
            assert conn.ping()
            fleet.partition("replica-0")
            fleet.partition("replica-0")  # idempotent
            assert not fleet.replicas["replica-0"].alive
            assert "replica-0" not in fleet.topology()
            # The live connection was severed, not drained.
            with pytest.raises(ExperimentError):
                conn.ping()
            conn.close()
            with pytest.raises(ExperimentError):
                ServiceClient(endpoint, timeout=2.0).connect()
        finally:
            fleet.stop()

    def test_partition_unknown_replica_is_an_error(self, tmp_path):
        fleet = Fleet(str(tmp_path), 1, mode="thread").start()
        try:
            with pytest.raises(ExperimentError):
                fleet.partition("replica-99")
        finally:
            fleet.stop()

    def test_validates_arguments(self, tmp_path):
        with pytest.raises(ExperimentError):
            Fleet(str(tmp_path), 0)
        with pytest.raises(ExperimentError):
            Fleet(str(tmp_path), 1, mode="container")

    def test_no_shared_l2_is_allowed(self, tmp_path):
        fleet = Fleet(
            str(tmp_path), 1, mode="thread", shared_l2=False
        ).start()
        try:
            assert fleet.l2_root is None
            with fleet.client() as client:
                assert client.request(
                    "advise", {"kernel": "lfk1"}
                ).ok
        finally:
            fleet.stop()


class TestProcessMode:
    def test_subprocess_replica_serves_byte_identically(
            self, tmp_path):
        fleet = Fleet(str(tmp_path), 1, mode="process").start()
        try:
            replica = fleet.replicas["replica-0"]
            assert replica.process is not None
            assert replica.alive
            with fleet.client() as client:
                response = client.request(
                    "advise", {"kernel": "heat1d"}
                )
            assert response.ok
            oracle = offline_response("advise", {"kernel": "heat1d"})
            assert response.canonical_text() == \
                oracle.canonical_text()
        finally:
            fleet.stop()
        assert replica.process.poll() is not None
        assert not os.path.exists(
            os.path.join(str(tmp_path), "replica-0.sock")
        )
