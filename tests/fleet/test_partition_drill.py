"""Chaos partition drill: kill a replica mid-burst, lose nothing.

The ``fleet.replica`` fault site is checked by the FleetClient before
every send, with the target replica's name as the path — so a plan
like ``{"site": "fleet.replica", "path": "replica-1", "after": N}``
deterministically partitions that replica on the (N+1)-th request
routed to it, mid-burst.  The drill's acceptance criteria: failover
serves **every** request, and every body stays byte-identical to the
single-replica offline oracle.
"""

import pytest

from repro.fleet import (
    make_zipf_frames,
    oracle_bodies,
    replay_frames,
    verify_replay,
)
from repro.fleet.fabric import Fleet
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import canonicalize

FRAMES = 60
SEED = 240


def drill_plan(victim, after):
    return faults.FaultPlan([
        faults.FaultSpec(site="fleet.replica", kind="io-error",
                         path=victim, after=after, count=1),
    ])


@pytest.fixture(scope="module")
def frames():
    return make_zipf_frames(FRAMES, seed=SEED)


@pytest.fixture(scope="module")
def oracle(frames):
    return oracle_bodies(frames)


def test_drill_plan_validates():
    plan = drill_plan("replica-1", 5)
    assert plan.faults[0].site == "fleet.replica"


def test_mid_burst_kill_stays_byte_identical(tmp_path, frames,
                                             oracle):
    fleet = Fleet(str(tmp_path), 3, mode="thread").start()
    try:
        def client():
            return fleet.client(
                retry=RetryPolicy.immediate(retries=2)
            )

        with faults.chaos(drill_plan("replica-1", after=10)):
            report = replay_frames(frames, client, jobs=1)

        # The kill really happened.
        assert not fleet.replicas["replica-1"].alive
        assert sorted(fleet.topology()) == [
            "replica-0", "replica-2"
        ]
        # ...and nobody noticed: every request served, every body
        # identical to the single-process oracle.
        assert report.errors == []
        assert report.statuses == ["ok"] * FRAMES
        assert verify_replay(frames, report, oracle) == []
    finally:
        fleet.stop()


def test_kill_during_concurrent_lanes(tmp_path, frames, oracle):
    """The drill holds under multi-lane replay too."""
    fleet = Fleet(str(tmp_path), 3, mode="thread").start()
    try:
        def client():
            return fleet.client(
                retry=RetryPolicy.immediate(retries=2)
            )

        with faults.chaos(drill_plan("replica-0", after=4)):
            report = replay_frames(frames, client, jobs=3)
        assert not fleet.replicas["replica-0"].alive
        assert report.errors == []
        assert verify_replay(frames, report, oracle) == []
    finally:
        fleet.stop()


def test_survivors_absorb_the_victims_shard(tmp_path, frames,
                                            oracle):
    """After the kill, the victim's keys are served by survivors
    (warm from the shared L2 where the victim published them)."""
    fleet = Fleet(str(tmp_path), 3, mode="thread").start()
    try:
        warm = replay_frames(
            frames, lambda: fleet.client(
                retry=RetryPolicy.immediate(retries=2)
            ), jobs=1,
        )
        assert verify_replay(frames, warm, oracle) == []
        fleet.partition("replica-2")
        report = replay_frames(
            frames, lambda: fleet.client(
                retry=RetryPolicy.immediate(retries=2)
            ), jobs=1,
        )
        assert report.errors == []
        assert verify_replay(frames, report, oracle) == []
        # Nothing was recomputed: the survivors served the victim's
        # keys from the shared L2 (or their own L1).
        computed = sum(
            fleet.metrics(name)["computed"]
            + fleet.metrics(name)["static_answers"]
            for name in ("replica-0", "replica-1")
        )
        distinct = len({
            canonicalize(f["kind"], dict(f["params"])).key
            for f in frames
        })
        assert computed <= distinct
    finally:
        fleet.stop()
