"""Shared L2 store unit tests: bodies, leases, degradation."""

import json
import time

import pytest

from repro.errors import ExperimentError
from repro.fleet.store import SharedL2Store
from repro.resilience import faults


class TestBodies:
    def test_roundtrip_and_counters(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        assert store.get("k1") is None
        store.put("k1", "advise", {"cpl": 1.5})
        assert store.get("k1") == {"cpl": 1.5}
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1
        assert stats["degraded"] is None

    def test_shared_between_instances(self, tmp_path):
        """Two replicas on one directory see each other's writes."""
        writer = SharedL2Store(str(tmp_path))
        reader = SharedL2Store(str(tmp_path))
        writer.put("k", "bound", {"v": 2})
        assert reader.get("k") == {"v": 2}

    def test_foreign_or_torn_document_reads_as_miss(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        store.put("k", "advise", {"v": 1})
        path = store._body_path("k")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"key": "other-key", "body"')
        assert store.get("k") is None
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"key": "wrong", "body": {"v": 9}}, fh)
        assert store.get("k") is None

    def test_requires_a_directory(self):
        with pytest.raises(ExperimentError):
            SharedL2Store("")

    def test_write_fault_degrades_to_read_only(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        store.put("before", "advise", {"v": 1})
        plan = faults.FaultPlan([
            faults.FaultSpec(site="fleet.l2_write", kind="io-error"),
        ])
        with faults.chaos(plan):
            store.put("during", "advise", {"v": 2})
        assert store.degraded is not None
        # Read-only from here on: reads still serve, writes drop.
        assert store.get("before") == {"v": 1}
        store.put("after", "advise", {"v": 3})
        assert store.get("after") is None
        assert store.stats()["degraded"] == store.degraded


class TestLeases:
    def test_exclusive_acquire(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        assert store.acquire_lease("k", "replica-0", ttl_s=30.0)
        assert not store.acquire_lease("k", "replica-1", ttl_s=30.0)
        holder = store.lease_holder("k")
        assert holder["owner"] == "replica-0"
        assert holder["expires"] > time.time()

    def test_release_then_reacquire(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        assert store.acquire_lease("k", "replica-0", ttl_s=30.0)
        store.release_lease("k", "replica-0")
        assert store.lease_holder("k") is None
        assert store.acquire_lease("k", "replica-1", ttl_s=30.0)

    def test_release_is_owner_checked(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        assert store.acquire_lease("k", "replica-0", ttl_s=30.0)
        store.release_lease("k", "replica-1")  # not yours: no-op
        assert store.lease_holder("k")["owner"] == "replica-0"

    def test_expired_lease_is_stolen(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        assert store.acquire_lease("k", "dead-replica", ttl_s=0.0)
        assert store.acquire_lease("k", "replica-1", ttl_s=30.0)
        assert store.lease_holder("k")["owner"] == "replica-1"

    def test_unreadable_lease_is_stolen(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        with open(store._lease_path("k"), "w",
                  encoding="utf-8") as fh:
            fh.write("not json")
        assert store.acquire_lease("k", "replica-1", ttl_s=30.0)

    def test_leases_are_per_key(self, tmp_path):
        store = SharedL2Store(str(tmp_path))
        assert store.acquire_lease("k1", "replica-0", ttl_s=30.0)
        assert store.acquire_lease("k2", "replica-1", ttl_s=30.0)
