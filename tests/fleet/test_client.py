"""FleetClient unit + integration tests: routing, failover, hotness."""

import pytest

from repro.errors import ExperimentError
from repro.fleet import FleetClient
from repro.fleet.fabric import Fleet
from repro.resilience.retry import RetryPolicy
from repro.service.client import offline_response
from repro.service.protocol import canonicalize

FAKE_TOPOLOGY = {
    "replica-0": "unix:/nonexistent-0.sock",
    "replica-1": "unix:/nonexistent-1.sock",
    "replica-2": "unix:/nonexistent-2.sock",
}


class TestRouting:
    def test_route_prefers_the_ring_owner(self):
        client = FleetClient(FAKE_TOPOLOGY, hot_threshold=10**9)
        key = canonicalize("advise", {"kernel": "lfk1"}).key
        order = client.route(key)
        assert order[0] == client.ring.owner(key)
        assert sorted(order) == sorted(FAKE_TOPOLOGY)

    def test_down_replicas_sink_to_the_tail(self):
        client = FleetClient(FAKE_TOPOLOGY, hot_threshold=10**9)
        key = canonicalize("advise", {"kernel": "lfk1"}).key
        owner = client.ring.owner(key)
        client.mark_down(owner)
        order = client.route(key)
        assert order[-1] == owner
        assert order[0] != owner
        client.mark_up(owner)
        assert client.route(key)[0] == owner

    def test_hot_keys_rotate_over_the_replica_set(self):
        client = FleetClient(
            FAKE_TOPOLOGY, replication=2, hot_threshold=3
        )
        key = canonicalize("advise", {"kernel": "lfk1"}).key
        owners = client.ring.owners(key, 2)
        heads = [client.route(key)[0] for _ in range(8)]
        # Cold phase: always the owner.
        assert heads[:2] == [owners[0], owners[0]]
        # Hot phase: round-robin within the replica set, never
        # outside it.
        assert set(heads[2:]) == set(owners)
        assert heads[2] != heads[3]
        assert client.hot_keys == 1

    def test_membership_changes_resize_the_ring(self):
        client = FleetClient(dict(FAKE_TOPOLOGY))
        client.add_replica("replica-3", "unix:/nonexistent-3.sock")
        assert len(client.ring) == 4
        client.remove_replica("replica-0")
        assert len(client.ring) == 3
        assert "replica-0" not in client.topology

    def test_empty_topology_is_rejected(self):
        with pytest.raises(ExperimentError):
            FleetClient({})


class TestDeadFleet:
    def test_every_replica_down_raises_after_retries(self):
        client = FleetClient(
            FAKE_TOPOLOGY, retry=RetryPolicy.immediate(retries=1)
        )
        with pytest.raises(ExperimentError,
                           match="failed on every replica"):
            client.request("advise", {"kernel": "lfk1"})
        assert client.stats()["failovers"] >= 3
        assert sorted(client.stats()["down"]) == sorted(FAKE_TOPOLOGY)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-client")
    fleet = Fleet(str(root), 3, mode="thread").start()
    yield fleet
    fleet.stop()


class TestLiveFleet:
    def test_bodies_match_the_offline_oracle(self, fleet):
        with fleet.client() as client:
            for kernel in ("lfk1", "lfk3", "daxpy"):
                response = client.request(
                    "advise", {"kernel": kernel}
                )
                assert response.ok
                oracle = offline_response(
                    "advise", {"kernel": kernel}
                )
                assert response.canonical_text() == \
                    oracle.canonical_text()

    def test_duplicates_hit_the_owner_cache(self, fleet):
        with fleet.client() as client:
            first = client.request("advise", {"kernel": "lfk7"})
            second = client.request("advise", {"kernel": "lfk7"})
        assert first.ok and second.ok
        assert second.origin == "cache"
        assert first.canonical_text() == second.canonical_text()

    def test_request_many_preserves_frame_order(self, fleet):
        frames = [("advise", {"kernel": "lfk1"}),
                  ("advise", {"kernel": "lfk2"}),
                  ("advise", {"kernel": "lfk1"})]
        with fleet.client() as client:
            responses = client.request_many(frames)
        assert [r.kind for r in responses] == ["advise"] * 3
        assert responses[0].canonical_text() == \
            responses[2].canonical_text()
        assert responses[0].canonical_text() != \
            responses[1].canonical_text()

    def test_worker_kinds_flow_through_the_fleet(self, fleet):
        with fleet.client() as client:
            response = client.request("bound", {"kernel": "lfk6"})
        assert response.ok
        oracle = offline_response("bound", {"kernel": "lfk6"})
        assert response.canonical_text() == oracle.canonical_text()


class TestFailover:
    def test_killed_owner_fails_over_byte_identically(self, tmp_path):
        fleet = Fleet(str(tmp_path), 3, mode="thread").start()
        try:
            client = fleet.client(
                retry=RetryPolicy.immediate(retries=2)
            )
            key = canonicalize("advise", {"kernel": "lfk12"}).key
            victim = client.ring.owner(key)
            warm = client.request("advise", {"kernel": "lfk12"})
            assert warm.ok
            fleet.partition(victim)
            after = client.request("advise", {"kernel": "lfk12"})
            assert after.ok
            assert after.canonical_text() == warm.canonical_text()
            assert client.stats()["failovers"] >= 1
            assert victim in client.stats()["down"]
        finally:
            fleet.stop()

    def test_failover_promotes_the_shared_l2(self, tmp_path):
        """The successor serves a killed owner's keys from L2."""
        fleet = Fleet(str(tmp_path), 3, mode="thread").start()
        try:
            client = fleet.client(
                retry=RetryPolicy.immediate(retries=2)
            )
            key = canonicalize("advise", {"kernel": "wave1d"}).key
            victim = client.ring.owner(key)
            client.request("advise", {"kernel": "wave1d"})
            fleet.partition(victim)
            response = client.request(
                "advise", {"kernel": "wave1d"}
            )
            assert response.ok
            successors = [
                name for name in client.ring.owners(key, 3)
                if name != victim
            ]
            l2_hits = 0
            for name in successors:
                shards = fleet.metrics(name).get("shards", {})
                l2_hits += shards.get(name, {}).get("l2_hits", 0)
            assert l2_hits >= 1
        finally:
            fleet.stop()
