"""Property tests for the consistent-hash ring.

The two properties the fleet's shard map must hold:

* **balance** — at >= 64 virtual nodes, no replica owns more than
  about twice its ideal share of a large random key population;
* **minimal remap** — membership changes move *only* the arcs they
  must: adding a replica moves keys exclusively *to* the newcomer,
  removing one moves exclusively *its own* keys, and everything else
  keeps its owner — across arbitrary random membership sequences.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExperimentError
from repro.fleet import DEFAULT_VNODES, HashRing, ring_position


def keys_for(count, tag=""):
    return [f"advise:{tag}{index:06d}" for index in range(count)]


class TestConstruction:
    def test_rejects_empty_membership(self):
        with pytest.raises(ExperimentError):
            HashRing([])

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ExperimentError):
            HashRing(["a", "b", "a"])

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ExperimentError):
            HashRing(["a"], vnodes=0)

    def test_membership_order_is_irrelevant(self):
        forward = HashRing(["a", "b", "c"])
        backward = HashRing(["c", "b", "a"])
        for key in keys_for(200):
            assert forward.owner(key) == backward.owner(key)

    def test_positions_are_stable(self):
        assert ring_position("x") == ring_position("x")
        assert ring_position("x") != ring_position("y")


class TestOwners:
    def test_first_owner_matches_owner(self):
        ring = HashRing(["a", "b", "c"])
        for key in keys_for(100):
            assert ring.owners(key, 1) == [ring.owner(key)]

    def test_owners_are_distinct_and_bounded(self):
        ring = HashRing(["a", "b", "c"])
        for key in keys_for(50):
            successors = ring.owners(key, 3)
            assert len(successors) == len(set(successors)) == 3
            more = ring.owners(key, 99)
            assert sorted(more) == ["a", "b", "c"]

    def test_owners_rejects_nonpositive_count(self):
        with pytest.raises(ExperimentError):
            HashRing(["a"]).owners("k", 0)


@settings(max_examples=20, deadline=None)
@given(
    replicas=st.integers(2, 8),
    seed=st.integers(0, 10_000),
)
def test_balance_within_2x_of_ideal_at_default_vnodes(replicas, seed):
    """Max per-replica load <= 2x ideal at >= 64 vnodes."""
    assert DEFAULT_VNODES >= 64
    ring = HashRing(
        [f"replica-{seed}-{i}" for i in range(replicas)]
    )
    keys = keys_for(4000, tag=f"{seed}:")
    load = ring.load(keys)
    assert sum(load.values()) == len(keys)
    ideal = len(keys) / replicas
    assert max(load.values()) <= 2.0 * ideal, load
    # Every replica owns *something* out of a large population.
    assert min(load.values()) > 0, load


@settings(max_examples=20, deadline=None)
@given(
    replicas=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_adding_a_replica_moves_keys_only_to_it(replicas, seed):
    ring = HashRing([f"n{seed}-{i}" for i in range(replicas)])
    grown = ring.add(f"n{seed}-new")
    keys = keys_for(1500, tag=f"{seed}:")
    before = ring.assignments(keys)
    after = grown.assignments(keys)
    moved = {k for k in keys if before[k] != after[k]}
    # Minimal remap: every moved key moved TO the new replica, and
    # the newcomer's keys are exactly the moved ones.
    assert all(after[k] == f"n{seed}-new" for k in moved)
    assert {k for k in keys
            if after[k] == f"n{seed}-new"} == moved
    # Roughly its fair share moved (loose: at most twice ideal).
    assert len(moved) <= 2.0 * len(keys) / (replicas + 1)


@settings(max_examples=20, deadline=None)
@given(
    replicas=st.integers(2, 8),
    victim=st.integers(0, 7),
    seed=st.integers(0, 10_000),
)
def test_removing_a_replica_moves_only_its_keys(replicas, victim,
                                                seed):
    nodes = [f"n{seed}-{i}" for i in range(replicas)]
    gone = nodes[victim % replicas]
    ring = HashRing(nodes)
    shrunk = ring.remove(gone)
    keys = keys_for(1500, tag=f"{seed}:")
    before = ring.assignments(keys)
    after = shrunk.assignments(keys)
    for key in keys:
        if before[key] == gone:
            assert after[key] != gone
        else:
            # Survivors keep every key they already owned.
            assert after[key] == before[key]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    operations=st.lists(st.booleans(), min_size=1, max_size=12),
)
def test_random_membership_sequences_stay_minimal(seed, operations):
    """add/remove churn: every step is a minimal remap step."""
    ring = HashRing([f"m{seed}-0", f"m{seed}-1"])
    keys = keys_for(600, tag=f"{seed}:")
    counter = 1
    for grow in operations:
        if not grow and len(ring) <= 1:
            grow = True
        before = ring.assignments(keys)
        if grow:
            counter += 1
            node = f"m{seed}-{counter}"
            ring = ring.add(node)
            after = ring.assignments(keys)
            assert all(
                after[k] == node
                for k in keys if before[k] != after[k]
            )
        else:
            node = ring.nodes[ring_position(str(counter))
                              % len(ring)]
            ring = ring.remove(node)
            after = ring.assignments(keys)
            assert all(
                before[k] == node
                for k in keys if before[k] != after[k]
            )


def test_add_and_remove_validate_membership():
    ring = HashRing(["a", "b"])
    with pytest.raises(ExperimentError):
        ring.add("a")
    with pytest.raises(ExperimentError):
        ring.remove("zz")
    assert "a" in ring and "zz" not in ring
    assert len(ring.remove("a")) == 1
