"""CFG construction: blocks, reachability, dominators, loops."""

from repro.analysis import build_cfg
from repro.workloads import compile_spec, kernel

from .builders import (
    diamond_program,
    strip_program,
    unreachable_program,
)


class TestBlocks:
    def test_linear_program_is_one_block(self):
        cfg = build_cfg(diamond_program())
        # diamond: entry, then-arm, else-arm, join
        assert len(cfg.blocks) == 4
        assert cfg.blocks[0].start == 0

    def test_blocks_partition_every_pc(self):
        cfg = build_cfg(strip_program())
        pcs = [pc for block in cfg.blocks for pc in block.pcs()]
        assert pcs == list(range(len(cfg.program)))

    def test_block_of_maps_pc_to_owner(self):
        cfg = build_cfg(strip_program())
        for block in cfg.blocks:
            for pc in block.pcs():
                assert cfg.block_of(pc) is block

    def test_diamond_edges(self):
        cfg = build_cfg(diamond_program())
        entry, then_arm, else_arm, join = cfg.blocks
        assert set(entry.successors) == {then_arm.index, else_arm.index}
        assert then_arm.successors == (join.index,)
        assert else_arm.successors == (join.index,)
        assert set(join.predecessors) == {then_arm.index, else_arm.index}


class TestReachability:
    def test_all_blocks_reachable_in_strip_loop(self):
        cfg = build_cfg(strip_program())
        assert cfg.reachable == frozenset(b.index for b in cfg.blocks)

    def test_jumped_over_block_is_unreachable(self):
        cfg = build_cfg(unreachable_program())
        unreachable = [
            b.index for b in cfg.blocks if b.index not in cfg.reachable
        ]
        assert len(unreachable) == 1


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(diamond_program())
        for block in cfg.blocks:
            assert cfg.dominates(0, block.index)

    def test_arms_do_not_dominate_join(self):
        cfg = build_cfg(diamond_program())
        _, then_arm, else_arm, join = cfg.blocks
        assert not cfg.dominates(then_arm.index, join.index)
        assert not cfg.dominates(else_arm.index, join.index)


class TestLoops:
    def test_strip_program_has_one_loop(self):
        cfg = build_cfg(strip_program())
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        # every vector pc sits inside the loop
        for pc, instr in enumerate(cfg.program):
            if instr.is_vector:
                assert cfg.block_of(pc).index in loop.blocks

    def test_diamond_has_no_loops(self):
        cfg = build_cfg(diamond_program())
        assert cfg.loops == ()

    def test_innermost_loop_of_loop_body(self):
        cfg = build_cfg(strip_program())
        loop = cfg.loops[0]
        body_index = next(iter(loop.blocks))
        assert cfg.innermost_loop_of(body_index) is loop

    def test_lfk2_goto_loop_nests_strip_loop(self):
        # LFK2's source GOTO produces an outer loop around the strip
        # loop; both must be discovered, properly nested.
        program = compile_spec(kernel("lfk2")).program
        cfg = build_cfg(program)
        assert len(cfg.loops) >= 2
        depths = {cfg.loop_depth(b.index) for b in cfg.blocks}
        assert max(depths) >= 2
