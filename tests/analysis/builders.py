"""Hand-built programs exercising specific analyzer behaviours."""

from repro.isa.builder import AsmBuilder
from repro.isa.operands import Immediate
from repro.isa.registers import areg, sreg, vreg


def strip_program(n: int = 300, name: str = "strip"):
    """One strip-mined vector loop computing ``x[i] += y[i]``."""
    b = AsmBuilder(name)
    x = b.data("x", 512)
    y = b.data("y", 512)
    b.mov(Immediate(0), areg(0), comment="zero base")
    b.mov(Immediate(n), areg(7))
    b.mov(Immediate(0), areg(5))
    with b.strip_loop(areg(7), areg(5)):
        b.vload(b.mem(x, areg(5)), vreg(0))
        b.vload(b.mem(y, areg(5)), vreg(1))
        b.vadd(vreg(0), vreg(1), vreg(2))
        b.vstore(vreg(2), b.mem(x, areg(5)))
    return b.build()


def diamond_program():
    """s0 written on both arms of a branch, read after the join."""
    b = AsmBuilder("diamond")
    b.mov(Immediate(1), areg(1))
    b.compare_lt(Immediate(0), areg(1))
    els = b.fresh_label()
    join = b.fresh_label()
    b.branch_true(els)
    b.mov(Immediate(2), sreg(0))
    b.jump(join)
    b.label(els)
    b.mov(Immediate(3), sreg(0))
    b.label(join)
    b.mov(sreg(0), sreg(1))
    return b.build()


def partial_init_program():
    """s0 written on the fall-through path only, then read."""
    b = AsmBuilder("partial")
    b.mov(Immediate(1), areg(1))
    b.compare_lt(Immediate(0), areg(1))
    skip = b.fresh_label()
    b.branch_true(skip)
    b.mov(Immediate(2), sreg(0))
    b.label(skip)
    b.mov(sreg(0), sreg(1))
    return b.build()


def uninit_program(comment: str | None = None):
    """Reads s0/s1 with no write anywhere."""
    b = AsmBuilder("uninit")
    b.mov(Immediate(0), areg(0))
    b.op("add", sreg(0), sreg(1), sreg(2), suffix="d", comment=comment)
    return b.build()


def unreachable_program():
    """A jump over one instruction nothing branches to."""
    b = AsmBuilder("unreach")
    target = b.fresh_label()
    b.jump(target)
    b.mov(Immediate(1), sreg(0))
    b.label(target)
    b.mov(Immediate(2), sreg(1))
    return b.build()


def vector_mov_program():
    """A vector ``mov`` — legal to build, outside the timing model."""
    b = AsmBuilder("vmov")
    x = b.data("x", 256)
    b.mov(Immediate(0), areg(0))
    b.set_vl(Immediate(4))
    b.vload(b.mem(x, areg(0)), vreg(0))
    b.op("mov", vreg(0), vreg(1), suffix="d")
    b.vstore(vreg(1), b.mem(x, areg(0)))
    return b.build()


def overlap_program(
    disp_b: int = 1,
    stride: int = 1,
    same_base: bool = True,
    n: int = 300,
):
    """Strip loop with a load at x+0 and a store at x+``disp_b``."""
    b = AsmBuilder("overlap")
    x = b.data("x", 1024)
    b.mov(Immediate(0), areg(0))
    b.mov(Immediate(n), areg(7))
    b.mov(Immediate(0), areg(5))
    b.mov(Immediate(0), areg(6))
    base_b = areg(5) if same_base else areg(6)
    with b.strip_loop(areg(7), areg(5)):
        b.vload(b.mem(x, areg(5), 0, stride), vreg(0))
        b.vadd(vreg(0), vreg(0), vreg(1))
        b.vstore(vreg(1), b.mem(x, base_b, disp_b, stride))
    return b.build()


def forwarding_program(n: int = 300):
    """Store to x then reload the identical addresses (no forwarding)."""
    b = AsmBuilder("forward")
    x = b.data("x", 1024)
    y = b.data("y", 1024)
    b.mov(Immediate(0), areg(0))
    b.mov(Immediate(n), areg(7))
    b.mov(Immediate(0), areg(5))
    with b.strip_loop(areg(7), areg(5)):
        b.vload(b.mem(y, areg(5)), vreg(0))
        b.vstore(vreg(0), b.mem(x, areg(5)))
        b.vload(b.mem(x, areg(5)), vreg(1))
        b.vstore(vreg(1), b.mem(y, areg(5), 512))
    return b.build()
