"""The abstract-interpretation predictor, one behaviour per test."""

import math

import pytest

from repro.analysis import MODEL_TIER_WIDEN, predict_program
from repro.analysis.staticpred import StaticPrediction
from repro.errors import AnalysisError
from repro.isa.builder import AsmBuilder
from repro.isa.operands import Immediate
from repro.isa.registers import areg, sreg, vreg
from repro.machine import DEFAULT_CONFIG
from repro.model import known_initial_memory
from repro.workloads import compile_spec, run_kernel, workload


def predict_spec(name, config=DEFAULT_CONFIG):
    spec = workload(name)
    compiled = compile_spec(spec)
    return spec, compiled, predict_program(
        compiled.program,
        config,
        known_memory=known_initial_memory(spec, compiled),
        trips=spec.trip_profile or None,
    )


class TestExactTier:
    @pytest.mark.parametrize("name", ["lfk1", "lfk3", "lfk12"])
    def test_bit_exact_against_simulator(self, name):
        spec, _compiled, prediction = predict_spec(name)
        result = run_kernel(spec).result
        assert prediction.exact
        assert prediction.tier == "exact"
        assert prediction.cycles == result.cycles
        assert prediction.counters() == {
            "instructions_executed": result.instructions_executed,
            "vector_instructions": result.vector_instructions,
            "scalar_instructions": result.scalar_instructions,
            "vector_memory_ops": result.vector_memory_ops,
            "scalar_memory_ops": result.scalar_memory_ops,
            "flops": result.flops,
        }

    def test_interval_is_degenerate(self):
        _spec, _compiled, prediction = predict_spec("lfk1")
        assert prediction.cycles_low == prediction.cycles
        assert prediction.cycles_high == prediction.cycles
        assert prediction.relative_width == 0.0

    def test_no_fastpath_config_still_exact(self):
        spec, _compiled, prediction = predict_spec(
            "lfk1", DEFAULT_CONFIG.without_fastpath()
        )
        result = run_kernel(
            spec, config=DEFAULT_CONFIG.without_fastpath()
        ).result
        assert prediction.exact
        assert prediction.cycles == result.cycles

    def test_fastpath_summarizes_loops(self):
        _spec, _compiled, prediction = predict_spec("lfk1")
        assert prediction.loops_summarized >= 1
        assert prediction.iterations_skipped > 0

    def test_scalar_recurrence_kernel_is_exact(self):
        # lfk5 has no vector loop at all: pure scalar interpretation.
        spec, _compiled, prediction = predict_spec("lfk5")
        result = run_kernel(spec).result
        assert prediction.exact
        assert prediction.cycles == result.cycles

    def test_to_dict_carries_the_counter_schema(self):
        _spec, _compiled, prediction = predict_spec("lfk3")
        payload = prediction.to_dict()
        assert payload["program"] == "lfk3"
        assert payload["tier"] == "exact"
        assert payload["exact"] is True
        assert payload["cycles"] == prediction.cycles
        for name, value in prediction.counters().items():
            assert payload[name] == value
        assert "decline_reason" not in payload


def data_dependent_branch_program():
    """A strip loop followed by a branch on (opaque) array data."""
    b = AsmBuilder("datadep")
    x = b.data("x", 4096)
    b.mov(Immediate(0), areg(0))
    b.mov(Immediate(300), areg(7))
    b.mov(Immediate(0), areg(5))
    with b.strip_loop(areg(7), areg(5)):
        b.vload(b.mem(x, areg(5)), vreg(0))
        b.vadd(vreg(0), vreg(0), vreg(1))
        b.vstore(vreg(1), b.mem(x, areg(5)))
    b.op("ld", b.mem(x, areg(0)), sreg(0), suffix="l")
    b.compare_lt(Immediate(1), sreg(0))
    skip = b.fresh_label()
    b.branch_true(skip)
    b.mov(Immediate(1), areg(1))
    b.label(skip)
    b.mov(Immediate(0), areg(1))
    return b.build()


class TestModelTier:
    def test_unknown_branch_falls_back_to_model(self):
        program = data_dependent_branch_program()
        prediction = predict_program(
            program, DEFAULT_CONFIG, trips=(300,)
        )
        assert not prediction.exact
        assert prediction.tier == "model"
        assert prediction.decline_reason == "branch-on-unknown-flag"

    def test_model_interval_has_documented_width(self):
        program = data_dependent_branch_program()
        prediction = predict_program(
            program, DEFAULT_CONFIG, trips=(300,)
        )
        assert prediction.cycles_low == prediction.cycles
        assert prediction.cycles_high == pytest.approx(
            prediction.cycles_low * MODEL_TIER_WIDEN
        )
        assert prediction.relative_width > 0.0

    def test_model_tier_without_trips_is_an_error(self):
        program = data_dependent_branch_program()
        with pytest.raises(AnalysisError):
            predict_program(program, DEFAULT_CONFIG)

    def test_scalar_cache_config_uses_model_tier(self):
        spec = workload("lfk1")
        compiled = compile_spec(spec)
        prediction = predict_program(
            compiled.program,
            DEFAULT_CONFIG.with_scalar_cache(),
            known_memory=known_initial_memory(spec, compiled),
            trips=spec.trip_profile or None,
        )
        assert not prediction.exact
        assert prediction.decline_reason == "scalar-cache-enabled"


class TestPredictionSurface:
    def test_counters_are_integers(self):
        _spec, _compiled, prediction = predict_spec("lfk2")
        for value in prediction.counters().values():
            assert isinstance(value, int)

    def test_cycles_are_finite(self):
        _spec, _compiled, prediction = predict_spec("lfk2")
        assert math.isfinite(prediction.cycles)
        assert prediction.cycles > 0
