"""Static counter prediction: strip discovery and exact totals."""

import pytest

from repro.analysis import (
    build_cfg,
    find_strip_loop,
    static_counts,
)
from repro.analysis.counts import estimate_counts
from repro.analysis.dataflow import solve
from repro.errors import AnalysisError
from repro.isa.builder import AsmBuilder
from repro.isa.operands import Immediate
from repro.isa.registers import areg, vreg

from .builders import diamond_program, strip_program


def analyze(program):
    cfg = build_cfg(program)
    return cfg, solve(cfg)


class TestStripDiscovery:
    def test_strip_loop_found(self):
        cfg, dataflow = analyze(strip_program())
        strip = find_strip_loop(cfg, dataflow)
        assert strip is not None
        assert strip.counter == areg(7)
        assert strip.step == 128

    def test_program_without_vector_loop_has_none(self):
        cfg, dataflow = analyze(diamond_program())
        assert find_strip_loop(cfg, dataflow) is None

    def test_two_strip_loops_rejected(self):
        b = AsmBuilder("twice")
        x = b.data("x", 1024)
        b.mov(Immediate(0), areg(0))
        b.mov(Immediate(300), areg(7))
        b.mov(Immediate(0), areg(5))
        with b.strip_loop(areg(7), areg(5)):
            b.vload(b.mem(x, areg(5)), vreg(0))
            b.vstore(vreg(0), b.mem(x, areg(5)))
        b.mov(Immediate(200), areg(6))
        with b.strip_loop(areg(6), areg(5)):
            b.vload(b.mem(x, areg(5)), vreg(1))
            b.vstore(vreg(1), b.mem(x, areg(5)))
        cfg, dataflow = analyze(b.build())
        with pytest.raises(AnalysisError, match="2 distinct"):
            find_strip_loop(cfg, dataflow)

    def test_schedule_splits_trips_into_strips(self):
        cfg, dataflow = analyze(strip_program())
        strip = find_strip_loop(cfg, dataflow)
        assert strip.schedule((300,), 128) == (3, 300)
        assert strip.schedule((5,), 128) == (1, 5)
        assert strip.schedule((128, 128), 128) == (2, 256)


class TestEstimateCounts:
    def test_strip_program_totals(self):
        cfg, dataflow = analyze(strip_program())
        counts = estimate_counts(cfg, dataflow, (300,))
        assert counts.strips == 3
        assert counts.elements == 300
        assert counts.loads == 6
        assert counts.stores == 3
        assert counts.f_add == 3
        assert counts.f_mul == 0
        assert counts.flops == 300
        assert counts.vector_memory_ops == 9
        assert counts.vector_instructions == 12

    def test_multiple_entries_accumulate(self):
        cfg, dataflow = analyze(strip_program())
        counts = estimate_counts(cfg, dataflow, (300, 10))
        assert counts.entries == 2
        assert counts.strips == 4
        assert counts.elements == 310
        assert counts.flops == 310

    def test_per_strip_mac_counts(self):
        cfg, dataflow = analyze(strip_program())
        counts = estimate_counts(cfg, dataflow, (300,))
        assert counts.per_strip.loads == 2
        assert counts.per_strip.stores == 1
        assert counts.per_strip.f_add == 1

    def test_known_vl_outside_loop(self):
        b = AsmBuilder("flat")
        x = b.data("x", 256)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(4))
        b.vload(b.mem(x, areg(0)), vreg(0))
        b.vadd(vreg(0), vreg(0), vreg(1))
        b.vstore(vreg(1), b.mem(x, areg(0)))
        cfg, dataflow = analyze(b.build())
        counts = estimate_counts(cfg, dataflow, ())
        assert counts.strips == 0
        assert counts.loads == 1 and counts.stores == 1
        assert counts.flops == 4

    def test_vector_loop_without_strip_idiom_rejected(self):
        b = AsmBuilder("wild")
        x = b.data("x", 256)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(8))
        b.mov(Immediate(5), areg(1))
        top = b.fresh_label()
        b.label(top)
        b.vload(b.mem(x, areg(0)), vreg(0))
        b.vstore(vreg(0), b.mem(x, areg(0)))
        b.sub_imm(1, areg(1))
        b.compare_lt(Immediate(0), areg(1))
        b.branch_true(top)
        cfg, dataflow = analyze(b.build())
        with pytest.raises(AnalysisError, match="strip-mining"):
            estimate_counts(cfg, dataflow, (5,))

    def test_strip_loop_with_empty_trips_rejected(self):
        cfg, dataflow = analyze(strip_program())
        with pytest.raises(AnalysisError, match="empty"):
            estimate_counts(cfg, dataflow, ())


class TestPublicEntryPoint:
    def test_static_counts_matches_estimate(self):
        program = strip_program()
        cfg, dataflow = analyze(program)
        direct = estimate_counts(cfg, dataflow, (300,))
        assert static_counts(program, (300,)) == direct
