"""The linter and counter oracle over every workload and option set.

This is the subsystem's acceptance gate: all ten case-study kernels
(plus the excluded LFKs and the extra stencil loops) must lint without
errors or warnings under every supported compiler configuration, and
the static counters must match the simulator's observed counters
exactly.
"""

import pytest

from repro.analysis import (
    LintOptions,
    Severity,
    lint_program,
    static_counts,
)
from repro.compiler import CompilerOptions
from repro.compiler.options import ReductionStyle
from repro.errors import CompileError
from repro.model import analyze_kernel
from repro.workloads import (
    ALL_WORKLOADS,
    CASE_STUDY_KERNELS,
    compile_spec,
    run_kernel,
)

VARIANTS = {
    "default": CompilerOptions(),
    "reuse": CompilerOptions(reuse_shifted_loads=True),
    "tight-sregs": CompilerOptions(scalar_fp_registers=2),
    "tight-aregs": CompilerOptions(address_registers=6),
    "partial-sums": CompilerOptions(
        reduction_style=ReductionStyle.PARTIAL_SUMS
    ),
    "direct-sum": CompilerOptions(
        reduction_style=ReductionStyle.DIRECT_SUM
    ),
}

WORKLOAD_IDS = [spec.name for spec in ALL_WORKLOADS]
CASE_IDS = [spec.name for spec in CASE_STUDY_KERNELS]


def compile_or_skip(spec, options):
    try:
        return compile_spec(spec, options)
    except CompileError as exc:
        pytest.skip(f"{spec.name} does not compile here: {exc}")


@pytest.mark.parametrize("variant", VARIANTS, ids=VARIANTS.keys())
@pytest.mark.parametrize("spec", ALL_WORKLOADS, ids=WORKLOAD_IDS)
class TestLintClean:
    def test_no_errors_or_warnings(self, spec, variant):
        compiled = compile_or_skip(spec, VARIANTS[variant])
        findings = lint_program(
            compiled.program,
            LintOptions(trips=tuple(spec.trip_profile)),
        )
        noisy = [
            f.format() for f in findings
            if f.severity >= Severity.WARNING
        ]
        assert noisy == []


@pytest.mark.parametrize("spec", ALL_WORKLOADS, ids=WORKLOAD_IDS)
class TestCountsMatchSimulator:
    def test_default_options(self, spec):
        run = run_kernel(spec)
        counts = static_counts(
            run.compiled.program, tuple(spec.trip_profile)
        )
        result = run.result
        assert counts.flops == result.flops
        assert counts.vector_memory_ops == result.vector_memory_ops
        assert counts.vector_instructions == result.vector_instructions


@pytest.mark.parametrize(
    "variant", ["reuse", "partial-sums", "direct-sum"]
)
@pytest.mark.parametrize("spec", CASE_STUDY_KERNELS, ids=CASE_IDS)
class TestCountsMatchSimulatorVariants:
    def test_variant(self, spec, variant):
        options = VARIANTS[variant]
        compile_or_skip(spec, options)
        run = run_kernel(spec, options=options)
        counts = static_counts(
            run.compiled.program, tuple(spec.trip_profile)
        )
        result = run.result
        assert counts.flops == result.flops
        assert counts.vector_memory_ops == result.vector_memory_ops
        assert counts.vector_instructions == result.vector_instructions


@pytest.mark.parametrize("spec", CASE_STUDY_KERNELS, ids=CASE_IDS)
class TestPerStripMatchesModel:
    def test_strip_body_equals_mac_counts(self, spec):
        """The analyzer's per-strip MAC workload must agree with the
        model layer's independently derived MAC counts."""
        program = compile_spec(spec).program
        counts = static_counts(program, tuple(spec.trip_profile))
        mac = analyze_kernel(spec.name, measure=False).mac.counts
        assert counts.per_strip.f_add == mac.f_add
        assert counts.per_strip.f_mul == mac.f_mul
        assert counts.per_strip.loads == mac.loads
        assert counts.per_strip.stores == mac.stores


class TestErrorGate:
    def test_case_study_kernels_have_zero_errors(self):
        for spec in CASE_STUDY_KERNELS:
            compiled = compile_spec(spec)
            findings = lint_program(
                compiled.program,
                LintOptions(trips=tuple(spec.trip_profile)),
            )
            errors = [
                f.format() for f in findings
                if f.severity >= Severity.ERROR
            ]
            assert errors == [], spec.name

    def test_verify_option_accepts_all_kernels(self):
        options = CompilerOptions(verify=True)
        for spec in CASE_STUDY_KERNELS:
            compiled = compile_spec(spec, options)
            assert compiled.program is not None
