"""Chime-level critical-path estimation."""

from repro.analysis import static_critical_path
from repro.workloads import compile_spec, kernel

from .builders import diamond_program, strip_program


class TestCriticalPath:
    def test_strip_program_has_chimes(self):
        path = static_critical_path(strip_program())
        assert path.chime_count >= 2
        assert path.cycles_per_strip > 0
        for chime in path.chimes:
            assert chime.cycles > 0
            assert chime.binding_pipe in {"load/store", "add", "multiply"}

    def test_binding_instruction_is_in_the_chime(self):
        path = static_critical_path(strip_program())
        for chime in path.chimes:
            assert chime.binding_instruction in chime.instructions

    def test_no_strip_loop_gives_empty_path(self):
        path = static_critical_path(diamond_program())
        assert path.chime_count == 0
        assert path.estimated_cycles is None

    def test_trip_profile_integrates_over_strips(self):
        without = static_critical_path(strip_program())
        with_trips = static_critical_path(strip_program(), trips=(300,))
        assert without.estimated_cycles is None
        assert with_trips.estimated_cycles is not None
        # three strips, two of them full-length
        assert (
            with_trips.estimated_cycles
            > 2 * with_trips.cycles_per_strip
        )
        assert with_trips.cycles_per_iteration is not None
        assert (
            with_trips.cycles_per_iteration
            == with_trips.estimated_cycles / 300
        )


class TestCompiledKernels:
    def test_lfk1_chime_structure(self):
        spec = kernel("lfk1")
        program = compile_spec(spec).program
        path = static_critical_path(
            program, trips=tuple(spec.trip_profile)
        )
        # LFK1: 3 loads + 1 store => four memory-bound chimes
        assert path.chime_count == 4
        assert set(path.binding_pipes()) == {"load/store"}
        assert path.estimated_cycles > 0

    def test_lfk7_has_arithmetic_bound_chimes(self):
        spec = kernel("lfk7")
        program = compile_spec(spec).program
        path = static_critical_path(program)
        # 8 multiplies over 9 loads: some chimes bind on the FP pipes
        assert {"add", "multiply"} & set(path.binding_pipes())
