"""Dataflow solvers: reaching defs, definite assignment, liveness, VL."""

from repro.analysis import build_cfg
from repro.analysis.dataflow import (
    effective_reads,
    is_self_move,
    is_zeroing_idiom,
    solve,
)
from repro.isa.builder import AsmBuilder
from repro.isa.operands import Immediate
from repro.isa.registers import VL, areg, sreg, vreg

from .builders import diamond_program, partial_init_program, strip_program


def analyze(program):
    cfg = build_cfg(program)
    return cfg, solve(cfg)


class TestReachingDefs:
    def test_both_diamond_arms_reach_the_join(self):
        program = diamond_program()
        cfg, dataflow = analyze(program)
        read_pc = len(program) - 1
        defs = dataflow.defs_of_use(read_pc, sreg(0))
        assert len(defs) == 2
        for def_pc in defs:
            assert sreg(0) in program[def_pc].writes

    def test_uses_of_def_inverts_defs_of_use(self):
        program = diamond_program()
        _, dataflow = analyze(program)
        read_pc = len(program) - 1
        for def_pc in dataflow.defs_of_use(read_pc, sreg(0)):
            assert read_pc in dataflow.uses_of_def[(def_pc, sreg(0))]

    def test_loop_carried_def_reaches_loop_top(self):
        program = strip_program()
        cfg, dataflow = analyze(program)
        # the counter decrement at the loop bottom reaches the
        # set_vl read at the loop top
        vl_write = next(
            pc for pc, i in enumerate(program) if VL in i.writes
        )
        counter_defs = dataflow.defs_of_use(vl_write, areg(7))
        assert len(counter_defs) == 2  # preheader mov + in-loop sub


class TestDefiniteAssignment:
    def test_both_arm_writes_are_definite(self):
        program = diamond_program()
        _, dataflow = analyze(program)
        assert sreg(0) in dataflow.definite_in[len(program) - 1]

    def test_one_arm_write_is_not_definite(self):
        program = partial_init_program()
        _, dataflow = analyze(program)
        read_pc = len(program) - 1
        assert sreg(0) not in dataflow.definite_in[read_pc]
        assert dataflow.defs_of_use(read_pc, sreg(0))


class TestLiveness:
    def test_stored_register_is_live_after_definition(self):
        program = strip_program()
        _, dataflow = analyze(program)
        add_pc = next(
            pc for pc, i in enumerate(program)
            if i.mnemonic == "add" and vreg(2) in i.writes
        )
        assert vreg(2) in dataflow.live_out[add_pc]

    def test_unused_write_is_dead(self):
        b = AsmBuilder("dead")
        b.mov(Immediate(0), areg(0))
        b.mov(Immediate(1), sreg(0))
        program = b.build()
        _, dataflow = analyze(program)
        assert sreg(0) not in dataflow.live_out[1]


class TestVLConstants:
    def test_entry_vl_is_the_reset_value(self):
        b = AsmBuilder("vl")
        b.mov(Immediate(0), areg(0))
        program = b.build()
        _, dataflow = analyze(program)
        assert dataflow.vl_in[0] == 128

    def test_immediate_write_propagates(self):
        b = AsmBuilder("vl")
        b.set_vl(Immediate(5))
        b.mov(Immediate(0), areg(0))
        program = b.build()
        _, dataflow = analyze(program)
        assert dataflow.vl_in[1] == 5

    def test_immediate_write_clamps_to_max_vl(self):
        b = AsmBuilder("vl")
        b.set_vl(Immediate(500))
        b.mov(Immediate(0), areg(0))
        program = b.build()
        _, dataflow = analyze(program)
        assert dataflow.vl_in[1] == 128

    def test_register_write_is_unknown(self):
        b = AsmBuilder("vl")
        b.mov(Immediate(7), areg(1))
        b.set_vl(areg(1))
        b.mov(Immediate(0), areg(0))
        program = b.build()
        _, dataflow = analyze(program)
        assert dataflow.vl_in[2] is None

    def test_strip_loop_vl_is_unknown_in_body(self):
        program = strip_program()
        _, dataflow = analyze(program)
        add_pc = next(
            pc for pc, i in enumerate(program)
            if i.mnemonic == "add" and vreg(2) in i.writes
        )
        assert dataflow.vl_in[add_pc] is None


class TestInstructionHelpers:
    def test_zeroing_idiom_reads_nothing(self):
        b = AsmBuilder("zero")
        instr = b.vsub(vreg(3), vreg(3), vreg(3))
        assert is_zeroing_idiom(instr)
        assert effective_reads(instr) == frozenset({VL})

    def test_ordinary_sub_reads_sources(self):
        b = AsmBuilder("sub")
        instr = b.vsub(vreg(1), vreg(2), vreg(3))
        assert not is_zeroing_idiom(instr)
        reads = effective_reads(instr)
        assert vreg(1) in reads and vreg(2) in reads

    def test_self_move_detected(self):
        b = AsmBuilder("anchor")
        instr = b.mov(areg(0), areg(0))
        assert is_self_move(instr)

    def test_vector_ops_implicitly_read_vl(self):
        b = AsmBuilder("vl")
        instr = b.vadd(vreg(0), vreg(1), vreg(2))
        assert VL in effective_reads(instr)
