"""The lint checker suite, one behaviour per test."""

import types

import pytest

from repro.analysis import (
    LintOptions,
    Severity,
    analyze_program,
    clear_analysis_cache,
    lint_program,
)
from repro.analysis.checks import _validate_chime, suppressed_checks
from repro.isa.builder import AsmBuilder
from repro.isa.operands import Immediate
from repro.isa.registers import areg, sreg, vreg
from repro.schedule.chimes import DEFAULT_RULES

from .builders import (
    forwarding_program,
    overlap_program,
    partial_init_program,
    strip_program,
    uninit_program,
    unreachable_program,
    vector_mov_program,
)


def findings_for(program, check, options=LintOptions()):
    return [f for f in lint_program(program, options) if f.check == check]


def teardown_module():
    clear_analysis_cache()


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_parse(self):
        assert Severity.parse("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("bogus")


class TestUninitReads:
    def test_never_written_is_an_error(self):
        found = findings_for(uninit_program(), "uninit-read")
        assert len(found) == 2  # s0 and s1
        assert all(f.severity is Severity.ERROR for f in found)

    def test_partially_written_is_a_warning(self):
        found = findings_for(partial_init_program(), "uninit-read")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "some paths" in found[0].message

    def test_clean_program_has_none(self):
        assert findings_for(strip_program(), "uninit-read") == []

    def test_zeroing_idiom_is_exempt(self):
        b = AsmBuilder("zero")
        x = b.data("x", 256)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(4))
        b.vsub(vreg(3), vreg(3), vreg(3))
        b.vstore(vreg(3), b.mem(x, areg(0)))
        assert findings_for(b.build(), "uninit-read") == []


class TestSuppression:
    def test_comment_directive_silences_one_check(self):
        program = uninit_program(comment="x (lint:ok uninit-read)")
        assert findings_for(program, "uninit-read") == []

    def test_directive_parses_trailing_punctuation(self):
        program = uninit_program(comment="zero acc (lint:ok uninit-read)")
        directive = suppressed_checks(program[1])
        assert directive == frozenset({"uninit-read"})

    def test_all_directive_silences_everything(self):
        program = uninit_program(comment="lint:ok all")
        assert findings_for(program, "uninit-read") == []

    def test_program_wide_suppression(self):
        options = LintOptions(suppress=frozenset({"uninit-read"}))
        assert findings_for(uninit_program(), "uninit-read", options) == []

    def test_unrelated_directive_does_not_silence(self):
        program = uninit_program(comment="lint:ok dead-store")
        assert len(findings_for(program, "uninit-read")) == 2


class TestVLChecks:
    def test_reset_read_warns(self):
        b = AsmBuilder("reset")
        x = b.data("x", 256)
        b.mov(Immediate(0), areg(0))
        b.vload(b.mem(x, areg(0)), vreg(0))
        b.vstore(vreg(0), b.mem(x, areg(0)))
        found = findings_for(b.build(), "vl-reset-read")
        assert len(found) == 2
        assert all(f.severity is Severity.WARNING for f in found)

    def test_explicit_vl_is_clean(self):
        assert findings_for(strip_program(), "vl-reset-read") == []

    def test_clobber_between_vector_ops_in_loop(self):
        b = AsmBuilder("clobber")
        x = b.data("x", 1024)
        b.mov(Immediate(0), areg(0))
        b.mov(Immediate(300), areg(7))
        b.mov(Immediate(0), areg(5))
        with b.strip_loop(areg(7), areg(5)):
            b.vload(b.mem(x, areg(5)), vreg(0))
            b.set_vl(Immediate(5))
            b.vstore(vreg(0), b.mem(x, areg(5)))
        found = findings_for(b.build(), "vl-clobber")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def _chained_block(self, first_vl, second_vl):
        b = AsmBuilder("revl")
        x = b.data("x", 256)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(first_vl))
        b.vload(b.mem(x, areg(0)), vreg(0))
        b.set_vl(Immediate(second_vl))
        b.vstore(vreg(0), b.mem(x, areg(0)))
        return b.build()

    def test_redundant_vl_resetup_warns(self):
        found = findings_for(self._chained_block(4, 4), "vl-redundant")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "re-asserts" in found[0].message

    def test_changed_vl_is_not_redundant(self):
        found = findings_for(self._chained_block(4, 8), "vl-redundant")
        assert found == []

    def test_asserting_the_reset_value_is_not_redundant(self):
        # The first explicit VL write is the *fix* for vl-reset-read,
        # even when it matches the architectural reset value.
        b = AsmBuilder("assert-reset")
        x = b.data("x", 256)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(128))
        b.vload(b.mem(x, areg(0)), vreg(0))
        assert findings_for(b.build(), "vl-redundant") == []

    def test_scalar_only_block_is_exempt(self):
        b = AsmBuilder("scalar-only")
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(4))
        b.set_vl(Immediate(4))
        b.mov(Immediate(1), areg(1))
        assert findings_for(b.build(), "vl-redundant") == []

    def test_compiled_kernels_have_no_redundant_vl(self):
        from repro.workloads import ALL_WORKLOADS, compile_spec

        for spec in ALL_WORKLOADS:
            program = compile_spec(spec).program
            assert findings_for(program, "vl-redundant") == []


class TestSchedule:
    def test_vector_mov_is_rejected(self):
        found = findings_for(vector_mov_program(), "schedule")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "timing" in found[0].message

    def test_compiled_kernels_schedule_cleanly(self):
        assert findings_for(strip_program(), "schedule") == []


class TestPairRules:
    def test_validate_chime_flags_excess_pair_reads(self):
        b = AsmBuilder("pairs")
        chime = types.SimpleNamespace(
            instructions=[
                b.vadd(vreg(0), vreg(4), vreg(1)),
                b.vmul(vreg(0), vreg(4), vreg(2)),
            ]
        )
        problems = _validate_chime(chime, DEFAULT_RULES)
        assert any("reads of vector pair" in p for p in problems)

    def test_validate_chime_flags_double_pipe_use(self):
        b = AsmBuilder("pipes")
        chime = types.SimpleNamespace(
            instructions=[
                b.vadd(vreg(0), vreg(1), vreg(2)),
                b.vadd(vreg(3), vreg(1), vreg(6)),
            ]
        )
        problems = _validate_chime(chime, DEFAULT_RULES)
        assert any("add pipe" in p for p in problems)

    def test_legal_chime_is_clean(self):
        b = AsmBuilder("legal")
        chime = types.SimpleNamespace(
            instructions=[b.vadd(vreg(0), vreg(1), vreg(2))]
        )
        assert _validate_chime(chime, DEFAULT_RULES) == []

    def test_strip_program_has_no_pair_conflicts(self):
        assert findings_for(strip_program(), "pair-conflict") == []


class TestMemoryOverlap:
    def test_small_shift_same_base_warns(self):
        found = findings_for(overlap_program(disp_b=1), "mem-overlap")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "1 elements apart" in found[0].message

    def test_shift_beyond_strip_length_is_safe(self):
        # trips cap the strip at 4 elements; a 5-element shift can
        # never land in the same strip
        options = LintOptions(trips=(4,))
        assert (
            findings_for(overlap_program(disp_b=5), "mem-overlap", options)
            == []
        )

    def test_shift_within_strip_length_still_warns(self):
        options = LintOptions(trips=(40,))
        found = findings_for(
            overlap_program(disp_b=5), "mem-overlap", options
        )
        assert len(found) == 1

    def test_disjoint_residues_are_safe(self):
        # stride 2 with an odd shift: the accesses interleave
        assert (
            findings_for(
                overlap_program(disp_b=1, stride=2), "mem-overlap"
            )
            == []
        )

    def test_different_base_registers_are_info(self):
        found = findings_for(
            overlap_program(disp_b=0, same_base=False), "mem-overlap"
        )
        assert len(found) == 1
        assert found[0].severity is Severity.INFO
        assert "different address registers" in found[0].message

    def test_store_then_reload_is_info(self):
        found = findings_for(forwarding_program(), "mem-overlap")
        assert len(found) == 1
        assert found[0].severity is Severity.INFO
        assert "reloaded" in found[0].message


class TestDeadCode:
    def test_unused_vector_load_is_a_dead_store(self):
        b = AsmBuilder("dead")
        x = b.data("x", 1024)
        b.mov(Immediate(300), areg(7))
        b.mov(Immediate(0), areg(5))
        with b.strip_loop(areg(7), areg(5)):
            b.vload(b.mem(x, areg(5)), vreg(0))
            b.vload(b.mem(x, areg(5), 512), vreg(3))  # never used
            b.vstore(vreg(0), b.mem(x, areg(5)))
        found = findings_for(b.build(), "dead-store")
        assert len(found) == 1
        assert "v3" in found[0].message

    def test_self_move_anchor_is_exempt(self):
        b = AsmBuilder("anchor")
        b.mov(areg(1), areg(1))
        program = b.build()
        assert findings_for(program, "dead-store") == []

    def test_unreachable_block_is_flagged(self):
        found = findings_for(unreachable_program(), "unreachable")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING


class TestFindingOutput:
    def test_format_includes_location_and_check(self):
        found = findings_for(uninit_program(), "uninit-read")
        text = found[0].format()
        assert text.startswith("uninit:1: error: [uninit-read]")

    def test_to_dict_round_trips_severity(self):
        found = findings_for(uninit_program(), "uninit-read")
        payload = found[0].to_dict()
        assert payload["severity"] == "error"
        assert payload["check"] == "uninit-read"

    def test_findings_sorted_most_severe_first(self):
        program = vector_mov_program()
        findings = lint_program(program)
        severities = [int(f.severity) for f in findings]
        assert severities == sorted(severities, reverse=True)

    def test_analysis_is_memoized_per_program(self):
        program = strip_program()
        assert analyze_program(program) is analyze_program(program)
