"""Replay the recorded advise burst through the static path.

``data/advise_burst.ndjson`` is a recorded burst of ``advise``
request frames covering every built-in workload plus problem-size,
fast-path, and compiler-variant variations.  The CI ``static-tier``
job runs this module: every frame is answered by the static tier and
then replayed **exactly** through the same worker entry point the
server's calibration loop uses; the agreement ledger over the whole
burst must stay within the documented 1% cycle-error gate
(``DEFAULT_AGREEMENT_GATE``), with zero exact-tier flags.
"""

import json
from pathlib import Path

import pytest

from repro.service import (
    DEFAULT_AGREEMENT_GATE,
    AgreementLedger,
    CalibrationSampler,
    ledger_summary,
)
from repro.service.jobs import execute_request
from repro.service.protocol import canonicalize

BURST_PATH = Path(__file__).parent / "data" / "advise_burst.ndjson"


def load_burst():
    frames = []
    for line in BURST_PATH.read_text().splitlines():
        if line.strip():
            frames.append(json.loads(line))
    return frames


def exact_replay_payload(payload):
    """The calibration loop's exact replay of one advise payload."""
    run_payload = {
        "kind": "run",
        "kernel": payload["kernel"],
        "options": payload.get("options") or {},
    }
    for name in ("no_fastpath", "max_cycles", "n"):
        if payload.get(name) is not None:
            run_payload[name] = payload[name]
    return run_payload


def test_burst_covers_every_workload():
    from repro.workloads import ALL_WORKLOADS

    kernels = {f["params"]["kernel"] for f in load_burst()}
    assert kernels == {spec.name for spec in ALL_WORKLOADS}


def test_burst_agreement_stays_within_the_gate(tmp_path):
    frames = load_burst()
    assert frames, "recorded burst must not be empty"
    ledger = AgreementLedger(str(tmp_path / "agreement.jsonl"))
    sampler = CalibrationSampler(
        every=1, gate=DEFAULT_AGREEMENT_GATE, ledger=ledger
    )
    for frame in frames:
        request = canonicalize(frame["kind"], dict(frame["params"]))
        static = execute_request(request.payload)
        assert static["status"] == "ok", (frame, static)
        exact = execute_request(exact_replay_payload(request.payload))
        assert exact["status"] == "ok", (frame, exact)
        sampler.judge(
            request.payload["kernel"],
            request.key,
            static["body"],
            exact["body"]["metrics"],
        )
    ledger.close()

    records = AgreementLedger(str(tmp_path / "agreement.jsonl")).load()
    assert len(records) == len(frames)
    summary = ledger_summary(records)
    assert summary["checks"] == len(frames)
    # The CI gate: >1% cycle-bound error vs exact replays fails.
    assert summary["max_rel_error"] <= DEFAULT_AGREEMENT_GATE, summary
    assert summary["breaches"] == 0, summary
    assert summary["flagged"] == 0, summary
    assert summary["counter_mismatches"] == 0, summary
    assert not sampler.flagged


def test_burst_bodies_are_deterministic():
    frames = load_burst()[:3]
    for frame in frames:
        request = canonicalize(frame["kind"], dict(frame["params"]))
        first = execute_request(request.payload)
        second = execute_request(request.payload)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


@pytest.mark.parametrize("index", range(3))
def test_burst_frames_canonicalize_stably(index):
    frame = load_burst()[index]
    a = canonicalize(frame["kind"], dict(frame["params"]))
    b = canonicalize(frame["kind"], dict(frame["params"]))
    assert a.key == b.key
    assert a.payload == b.payload
