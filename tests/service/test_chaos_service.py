"""Chaos tests for the analysis service.

The service must hide infrastructure failure from clients: a killed
worker is retried under the pool's RetryPolicy, a dropped connection
only affects that connection, and a failing durable-cache write
degrades durability without failing the request.
"""

import pytest

from repro.errors import ExperimentError
from repro.resilience import faults
from repro.service import ServiceConfig, start_in_thread
from repro.service.client import ServiceClient


@pytest.fixture()
def server(tmp_path):
    thread = start_in_thread(
        ServiceConfig(
            socket_path=str(tmp_path / "chaos.sock"),
            workers=1,
            cache_path=str(tmp_path / "cache.log"),
            retries=2,
        )
    )
    yield thread
    thread.stop()


class TestWorkerCrashes:
    def test_killed_worker_is_retried_invisibly(self, server):
        """A worker killed mid-request must never surface to the
        client: the pool rebuilds, the job retries, the response is
        the same bytes a healthy run produces."""
        with ServiceClient(server.endpoints[0], timeout=60.0) as client:
            healthy = client.request("bound", {"kernel": "lfk6"})
            poisoned = client.request(
                "run",
                {"kernel": "lfk6",
                 "_inject": {"kind": "exit", "attempts": 1}},
            )
            assert poisoned.ok
            assert poisoned.origin == "computed"
            metrics = client.metrics()
            assert metrics["worker_restarts"] >= 1
            # Same content key as the healthy twin -> later identical
            # requests are cache hits even though the first attempt
            # died.
            again = client.request("run", {"kernel": "lfk6"})
            assert again.ok and again.origin == "cache"
            assert again.canonical_text() == poisoned.canonical_text()
            assert healthy.ok

    def test_exhausted_retries_surface_as_infrastructure(self, server):
        with ServiceClient(server.endpoints[0], timeout=60.0) as client:
            response = client.request(
                "bound",
                {"kernel": "lfk8",
                 "_inject": {"kind": "exit", "attempts": 10}},
            )
            assert response.status == "error"
            assert response.error["code"] == "infrastructure"
            assert response.exit_code == 5
            # The server survives and keeps answering.
            assert client.ping()
            healthy = client.request("bound", {"kernel": "lfk8"})
            assert healthy.ok

    def test_deterministic_raise_is_not_retried(self, server):
        """A job that raises (rather than dying) fails the same way
        every time; the pool must not burn retries on it."""
        with ServiceClient(server.endpoints[0], timeout=60.0) as client:
            before = server.server.pool.jobs_submitted
            response = client.request(
                "bound",
                {"kernel": "lfk1", "n": 64,
                 "_inject": {"kind": "raise", "attempts": 10}},
            )
            assert response.status == "error"
            assert server.server.pool.jobs_submitted == before + 1


class TestConnectionFaults:
    def test_accept_fault_drops_one_connection_only(self, server):
        plan = faults.FaultPlan.from_dict(
            {"faults": [
                {"site": "service.accept", "kind": "io-error",
                 "count": 1},
            ]}
        )
        with faults.chaos(plan):
            doomed = ServiceClient(server.endpoints[0], timeout=5.0)
            with pytest.raises(ExperimentError):
                doomed.connect()
                doomed.request("ping")
            doomed.close()
            # The very next connection is served normally.
            with ServiceClient(server.endpoints[0]) as client:
                assert client.ping()
            # fired() reports on the armed plan, so look before the
            # chaos block ends.
            assert any(
                f["site"] == "service.accept" for f in faults.fired()
            )


class TestCacheWriteFaults:
    def test_cache_write_fault_degrades_but_request_succeeds(
        self, server
    ):
        plan = faults.FaultPlan.from_dict(
            {"faults": [
                {"site": "service.cache_write", "kind": "io-error"},
            ]}
        )
        with faults.chaos(plan):
            with ServiceClient(server.endpoints[0],
                               timeout=60.0) as client:
                response = client.request("mac", {"kernel": "lfk10"})
                assert response.ok
                metrics = client.metrics()
                assert metrics["cache"]["degraded"] is not None
                assert not metrics["cache"]["durable"]
                # The in-memory cache still serves the result.
                again = client.request("mac", {"kernel": "lfk10"})
                assert again.ok and again.origin == "cache"
