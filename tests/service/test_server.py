"""End-to-end server tests over a real UNIX socket.

One module-scoped server (1 worker) backs the cheap round-trip tests;
behaviors that need special limits (admission, deadlines, drain) spin
up their own short-lived instances.
"""

import pytest

from repro.service import ServiceConfig, start_in_thread
from repro.service.client import (
    ServiceClient,
    offline_response,
    parse_endpoint,
)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("svc") / "macs.sock")
    thread = start_in_thread(
        ServiceConfig(socket_path=sock, workers=1, client_limit=32)
    )
    yield thread
    thread.stop()


@pytest.fixture()
def client(server):
    with ServiceClient(server.endpoints[0]) as active:
        yield active


class TestEndpoints:
    def test_parse_endpoint(self):
        assert parse_endpoint("unix:/tmp/x.sock") == \
            ("unix", "/tmp/x.sock")
        assert parse_endpoint("tcp:127.0.0.1:80") == \
            ("tcp", ("127.0.0.1", 80))
        assert parse_endpoint("127.0.0.1:80") == \
            ("tcp", ("127.0.0.1", 80))
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            parse_endpoint("nonsense")

    def test_tcp_endpoint_round_trips(self):
        thread = start_in_thread(
            ServiceConfig(host="127.0.0.1", port=0, workers=1)
        )
        try:
            endpoint = thread.endpoints[0]
            assert endpoint.startswith("tcp:")
            with ServiceClient(endpoint) as active:
                assert active.ping()
                response = active.request("bound", {"kernel": "lfk1"})
                assert response.ok
        finally:
            thread.stop()


class TestRoundTrips:
    def test_bound_request(self, client):
        response = client.request("bound", {"kernel": "lfk1"})
        assert response.ok
        assert response.kind == "bound"
        assert response.origin in ("computed", "cache")
        assert response.body["metrics"]["cpl"] > 0

    def test_ax_request(self, client):
        response = client.request("ax", {"kernel": "lfk1"})
        assert response.ok
        body = response.body
        assert body["t_a_cpl"] > 0 and body["t_x_cpl"] > 0
        assert body["overlap_lower_cpl"] <= body["overlap_upper_cpl"]

    def test_lint_request(self, client):
        response = client.request(
            "lint", {"kernel": "lfk1", "min_severity": "warning"}
        )
        assert response.ok
        assert response.body["errors"] == 0

    def test_analyze_request(self, client):
        response = client.request("analyze", {"kernel": "lfk1"})
        assert response.ok
        assert "MACS" in response.body["report"]
        assert response.render() == response.body["report"]

    def test_sweep_request(self, client):
        response = client.request(
            "sweep", {"kernels": ["lfk1"], "variants": ["default"]}
        )
        assert response.ok
        assert "lfk1" in response.body["table"]
        assert response.body["results_jsonl"].strip()

    def test_usage_error_response(self, client):
        response = client.request("bound", {"kernel": "nope"})
        assert response.status == "error"
        assert response.error["code"] == "usage"
        assert response.exit_code == 2

    def test_simulation_error_response(self, client):
        # An absurdly small cycle budget trips the watchdog in the
        # worker and comes back as a typed budget error, exit code 4.
        response = client.request(
            "run", {"kernel": "lfk1", "max_cycles": 1}
        )
        assert response.status == "error"
        assert response.error["code"] == "budget"
        assert response.exit_code == 4

    def test_malformed_line_gets_usage_error(self, server):
        with ServiceClient(server.endpoints[0]) as active:
            active._send({"kind": "bound"})  # no params: bad request
            response = active._read_response()
            assert response.status == "error"
            assert response.error["code"] == "usage"

    def test_control_requests(self, client):
        assert client.ping()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 1
        metrics = client.metrics()
        assert metrics["computed"] >= 1
        assert "latency_ms" in metrics


class TestCachingAndSingleFlight:
    def test_second_request_is_a_cache_hit(self, client):
        first = client.request("mac", {"kernel": "lfk7"})
        second = client.request("mac", {"kernel": "lfk7"})
        assert first.ok and second.ok
        assert second.origin == "cache"
        assert second.canonical_text() == first.canonical_text()

    def test_concurrent_duplicates_coalesce(self, server, client):
        computed_before = server.server.metrics.counters["computed"]
        responses = client.request_many(
            [("run", {"kernel": "lfk9"})] * 6
        )
        assert all(r.ok for r in responses)
        origins = sorted(r.origin for r in responses)
        assert origins.count("computed") == 1
        assert origins.count("coalesced") == 5
        bodies = {r.canonical_text() for r in responses}
        assert len(bodies) == 1
        computed_after = server.server.metrics.counters["computed"]
        assert computed_after - computed_before == 1

    def test_bodies_match_offline_execution(self, client):
        for kind, params in (
            ("bound", {"kernel": "lfk2"}),
            ("ax", {"kernel": "lfk2"}),
            ("lint", {"kernel": "lfk2"}),
            ("analyze", {"kernel": "lfk2"}),
        ):
            served = client.request(kind, params)
            offline = offline_response(kind, params)
            assert served.ok and offline.ok
            assert served.canonical_text() == \
                offline.canonical_text()
            assert served.render() == offline.render()


class TestAdmissionOverWire:
    def test_queue_full_rejection(self):
        thread = start_in_thread(
            ServiceConfig(socket_path=None, host="127.0.0.1",
                          workers=1, queue_limit=1, client_limit=32)
        )
        try:
            with ServiceClient(thread.endpoints[0]) as active:
                responses = active.request_many([
                    ("run", {"kernel": "lfk1"}),
                    ("run", {"kernel": "lfk2"}),  # 2nd leader: full
                ])
                statuses = sorted(r.status for r in responses)
                assert statuses == ["ok", "rejected"]
                rejected = next(
                    r for r in responses if r.status == "rejected"
                )
                assert rejected.error["retry_after_s"] > 0
                assert rejected.exit_code == 6
        finally:
            thread.stop()

    def test_client_limit_rejection(self):
        thread = start_in_thread(
            ServiceConfig(host="127.0.0.1", workers=1,
                          queue_limit=32, client_limit=1)
        )
        try:
            with ServiceClient(thread.endpoints[0]) as active:
                responses = active.request_many([
                    ("run", {"kernel": "lfk3"}),
                    ("run", {"kernel": "lfk3"}),
                ])
                statuses = sorted(r.status for r in responses)
                assert statuses == ["ok", "rejected"]
                rejected = next(
                    r for r in responses if r.status == "rejected"
                )
                assert "client in-flight" in rejected.error["message"]
        finally:
            thread.stop()


class TestDeadlines:
    def test_expired_deadline_is_a_typed_budget_error(self):
        thread = start_in_thread(
            ServiceConfig(host="127.0.0.1", workers=1,
                          job_timeout_s=2.0, retries=1)
        )
        try:
            with ServiceClient(thread.endpoints[0],
                               timeout=60.0) as active:
                response = active.request(
                    "bound",
                    {"kernel": "lfk1",
                     "_inject": {"kind": "hang", "attempts": 1}},
                    deadline_s=0.3,
                )
                assert response.status == "error"
                assert response.error["code"] == "budget"
                assert response.exit_code == 4
                assert "deadline" in response.error["message"]
        finally:
            thread.stop()


class TestForkHygiene:
    def test_forked_child_closes_inherited_listen_sockets(self):
        """A forked worker must never hold the server's accept socket
        open: if it did, the port would stay bound after the server
        exits and drained connections would hang in limbo."""
        import os

        thread = start_in_thread(
            ServiceConfig(host="127.0.0.1", workers=1)
        )
        try:
            fds = [
                sock.fileno()
                for sock in thread.server._raw_sockets
            ]
            assert fds and all(fd >= 0 for fd in fds)
            pid = os.fork()
            if pid == 0:
                # Child: the at-fork hook must have closed every
                # inherited listener fd.
                closed = 0
                for fd in fds:
                    try:
                        os.fstat(fd)
                    except OSError:
                        closed += 1
                os._exit(0 if closed == len(fds) else 1)
            _, wait_status = os.waitpid(pid, 0)
            assert os.WIFEXITED(wait_status)
            assert os.WEXITSTATUS(wait_status) == 0
            # The parent's listener still works after the fork.
            with ServiceClient(thread.endpoints[0]) as active:
                assert active.ping()
        finally:
            thread.stop()


class TestDrain:
    def test_drain_request_stops_new_work(self):
        thread = start_in_thread(
            ServiceConfig(host="127.0.0.1", workers=1)
        )
        with ServiceClient(thread.endpoints[0]) as active:
            warm = active.request("bound", {"kernel": "lfk4"})
            assert warm.ok
            assert active.drain().ok
            # Cache hits still answer during the drain...
            cached = active.request("bound", {"kernel": "lfk4"})
            assert cached.ok and cached.origin == "cache"
            # ...but new computations are refused, typed unavailable.
            refused = active.request("bound", {"kernel": "lfk5"})
            assert refused.status == "rejected"
            assert refused.error["code"] == "unavailable"
            assert refused.exit_code == 6
        thread.thread.join(timeout=10.0)
        assert not thread.thread.is_alive()

    def test_stop_is_clean_and_removes_socket(self, tmp_path):
        import os

        sock = str(tmp_path / "drain.sock")
        thread = start_in_thread(
            ServiceConfig(socket_path=sock, workers=1)
        )
        assert os.path.exists(sock)
        thread.stop()
        assert not thread.thread.is_alive()
        assert not os.path.exists(sock)
