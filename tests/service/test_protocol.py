"""Protocol unit tests: canonicalization, keys, framing, rendering."""

import json

import pytest

from repro.compiler.options import DEFAULT_OPTIONS
from repro.service.protocol import (
    CONTROL_KINDS,
    ERROR_EXIT_CODES,
    REQUEST_KINDS,
    ProtocolError,
    Response,
    canonicalize,
    decode_line,
    encode_line,
    error_response,
    options_from_dict,
    options_to_dict,
    render_body,
)
from repro.sweep.spec import OPTION_VARIANTS


class TestCanonicalize:
    def test_same_params_same_key(self):
        a = canonicalize("bound", {"kernel": "lfk1"})
        b = canonicalize("bound", {"kernel": "lfk1"})
        assert a.key == b.key
        assert a.payload == b.payload

    def test_task_kinds_reuse_sweep_keys(self):
        from repro.machine import DEFAULT_CONFIG
        from repro.sweep.spec import SweepTask

        request = canonicalize("bound", {"kernel": "lfk1"})
        task = SweepTask(
            workload="lfk1", options=DEFAULT_OPTIONS,
            config=DEFAULT_CONFIG, n=None, mode="bound",
        )
        assert request.key == task.key

    def test_variant_and_equivalent_options_share_key(self):
        via_variant = canonicalize(
            "bound", {"kernel": "lfk1", "variant": "default"}
        )
        plain = canonicalize("bound", {"kernel": "lfk1"})
        assert via_variant.key == plain.key

    def test_distinct_kinds_distinct_keys(self):
        keys = {
            canonicalize(kind, {"kernel": "lfk1"}).key
            for kind in ("run", "bound", "mac", "ax", "lint", "analyze")
        }
        assert len(keys) == 6

    def test_inject_is_not_part_of_the_key(self):
        plain = canonicalize("run", {"kernel": "lfk2"})
        poisoned = canonicalize(
            "run",
            {"kernel": "lfk2",
             "_inject": {"kind": "exit", "attempts": 1}},
        )
        assert poisoned.key == plain.key
        assert poisoned.payload["_inject"]["kind"] == "exit"
        assert "_inject" not in plain.payload

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request kind"):
            canonicalize("bogus", {})

    def test_control_kinds_are_not_compute_kinds(self):
        for kind in CONTROL_KINDS:
            assert kind not in REQUEST_KINDS
            with pytest.raises(ProtocolError):
                canonicalize(kind, {})

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ProtocolError):
            canonicalize("bound", {"kernel": "nope"})

    def test_missing_kernel_rejected(self):
        with pytest.raises(ProtocolError, match="kernel"):
            canonicalize("bound", {})

    def test_unknown_variant_rejected(self):
        with pytest.raises(ProtocolError, match="variant"):
            canonicalize("bound",
                         {"kernel": "lfk1", "variant": "bogus"})

    def test_variant_and_options_mutually_exclusive(self):
        with pytest.raises(ProtocolError, match="mutually exclusive"):
            canonicalize(
                "bound",
                {"kernel": "lfk1", "variant": "default",
                 "options": "unroll=2"},
            )

    def test_bad_problem_size_rejected(self):
        for n in (0, -3, 1.5, True):
            with pytest.raises(ProtocolError):
                canonicalize("run", {"kernel": "lfk1", "n": n})

    def test_sweep_validates_kernels_and_variants(self):
        with pytest.raises(ProtocolError):
            canonicalize("sweep", {"kernels": ["nope"]})
        with pytest.raises(ProtocolError):
            canonicalize("sweep",
                         {"kernels": ["lfk1"], "variants": ["bogus"]})

    def test_report_validates_experiment_names(self):
        with pytest.raises(ProtocolError, match="unknown experiment"):
            canonicalize("report", {"experiments": ["nope"]})

    def test_report_name_order_does_not_change_key(self):
        a = canonicalize(
            "report", {"experiments": ["table1", "figure1"]}
        )
        b = canonicalize(
            "report", {"experiments": ["figure1", "table1"]}
        )
        assert a.key == b.key


class TestOptionsRoundTrip:
    @pytest.mark.parametrize("name", sorted(OPTION_VARIANTS))
    def test_every_variant_round_trips(self, name):
        options = OPTION_VARIANTS[name]
        rebuilt = options_from_dict(options_to_dict(options))
        assert rebuilt == options

    def test_default_options_serialize_empty(self):
        assert options_to_dict(DEFAULT_OPTIONS) == {}

    def test_unknown_option_rejected(self):
        with pytest.raises(ProtocolError, match="unknown compiler"):
            options_from_dict({"warp_drive": True})


class TestFraming:
    def test_encode_decode_round_trip(self):
        frame = {"id": "r1", "kind": "bound",
                 "params": {"kernel": "lfk1"}}
        assert decode_line(encode_line(frame)) == frame

    def test_encoding_is_canonical(self):
        a = encode_line({"b": 1, "a": 2})
        b = encode_line({"a": 2, "b": 1})
        assert a == b

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_line(b"{nope\n")

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1, 2]\n")


class TestResponses:
    def test_error_exit_codes_match_taxonomy(self):
        assert ERROR_EXIT_CODES["usage"] == 2
        assert ERROR_EXIT_CODES["workload"] == 3
        assert ERROR_EXIT_CODES["simulation"] == 4
        assert ERROR_EXIT_CODES["budget"] == 4
        assert ERROR_EXIT_CODES["infrastructure"] == 5
        assert ERROR_EXIT_CODES["unavailable"] == 6

    def test_error_response_envelope(self):
        envelope = error_response(
            "r9", "bound", "busy", "queue full",
            status="rejected", retry_after_s=0.25,
        )
        response = Response.from_dict(envelope)
        assert not response.ok
        assert response.status == "rejected"
        assert response.error["retry_after_s"] == 0.25
        assert response.exit_code == 6  # busy -> unavailable family

    def test_ok_response_exit_code(self):
        response = Response.from_dict(
            {"id": "r1", "status": "ok", "kind": "bound",
             "body": {"x": 1}}
        )
        assert response.ok and response.exit_code == 0

    def test_canonical_text_is_byte_stable(self):
        a = Response(id="1", status="ok", body={"b": 1, "a": 2})
        b = Response(id="2", status="ok", body={"a": 2, "b": 1})
        assert a.canonical_text() == b.canonical_text()

    def test_render_body_json_kinds(self):
        text = render_body("bound", {"kernel": "lfk1"})
        assert json.loads(text) == {"kernel": "lfk1"}

    def test_render_body_text_kinds(self):
        assert render_body("analyze", {"report": "hello"}) == "hello"
        assert render_body("sweep", {"table": "t"}) == "t"
