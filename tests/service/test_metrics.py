"""Service metrics unit tests: quantiles and snapshots."""

import pytest

from repro.service.metrics import ServiceMetrics, quantile


class TestQuantile:
    def test_empty_and_singleton(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([7.0], 0.95) == 7.0

    def test_median_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [float(i) for i in range(10)]
        assert quantile(values, 0.0) == 0.0
        assert quantile(values, 1.0) == 9.0

    def test_p95_in_range(self):
        values = [float(i) for i in range(100)]
        assert 90.0 <= quantile(values, 0.95) <= 99.0


class TestServiceMetrics:
    def test_latency_summary_per_kind(self):
        metrics = ServiceMetrics()
        for ms in (1.0, 2.0, 3.0):
            metrics.observe("bound", ms)
        metrics.observe("sweep", 50.0)
        summary = metrics.latency_summary()
        assert summary["bound"]["count"] == 3
        assert summary["bound"]["p50_ms"] == pytest.approx(2.0)
        assert summary["bound"]["max_ms"] == pytest.approx(3.0)
        assert summary["sweep"]["p95_ms"] == pytest.approx(50.0)

    def test_reservoir_is_bounded(self):
        metrics = ServiceMetrics(reservoir=16)
        for i in range(100):
            metrics.observe("bound", float(i))
        assert metrics.latency_summary()["bound"]["count"] == 16

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.count("requests:bound", 3)
        metrics.count("computed")
        metrics.count("coalesced", 2)
        metrics.count("cache_hits")
        snapshot = metrics.snapshot(
            queue_depth=1, in_flight=2,
            cache_stats={"entries": 4}, workers=2,
            worker_restarts=1, draining=False,
        )
        assert snapshot["requests"] == {"bound": 3}
        assert snapshot["computed"] == 1
        assert snapshot["coalesced"] == 2
        assert snapshot["cache_hits"] == 1
        assert snapshot["queue_depth"] == 1
        assert snapshot["in_flight"] == 2
        assert snapshot["workers"] == 2
        assert snapshot["worker_restarts"] == 1
        assert snapshot["cache"]["entries"] == 4
        assert "latency_ms" in snapshot


class TestShardCounters:
    def test_unlabelled_metrics_have_no_shard_keys(self):
        metrics = ServiceMetrics()
        metrics.count_shard("l1_hits")  # no label: dropped
        snapshot = metrics.snapshot(
            queue_depth=0, in_flight=0, cache_stats={},
            workers=1, worker_restarts=0, draining=False,
        )
        assert "shard" not in snapshot
        assert "shards" not in snapshot

    def test_shard_label_flows_into_the_snapshot(self):
        metrics = ServiceMetrics(shard="replica-1")
        metrics.count_shard("l1_hits", 3)
        metrics.count_shard("l2_hits")
        metrics.count_shard("computed", 2, shard="replica-9")
        snapshot = metrics.snapshot(
            queue_depth=0, in_flight=0, cache_stats={},
            workers=1, worker_restarts=0, draining=False,
        )
        assert snapshot["shard"] == "replica-1"
        assert snapshot["shards"]["replica-1"] == {
            "l1_hits": 3, "l2_hits": 1
        }
        # An explicit shard label wins over the default.
        assert snapshot["shards"]["replica-9"] == {"computed": 2}

    def test_shard_summary_is_sorted_and_stable(self):
        metrics = ServiceMetrics(shard="b")
        metrics.count_shard("x", shard="b")
        metrics.count_shard("x", shard="a")
        summary = metrics.shard_summary()
        assert list(summary) == ["a", "b"]
        assert summary == metrics.shard_summary()

    def test_labelled_shard_snapshot_even_without_counts(self):
        metrics = ServiceMetrics(shard="replica-0")
        snapshot = metrics.snapshot(
            queue_depth=0, in_flight=0, cache_stats={},
            workers=1, worker_restarts=0, draining=False,
        )
        assert snapshot["shard"] == "replica-0"
        assert snapshot["shards"] == {}
