"""Single-flight table unit tests (asyncio-native)."""

import asyncio

import pytest

from repro.service.singleflight import SingleFlight


def run(coroutine):
    return asyncio.run(coroutine)


class TestSingleFlight:
    def test_leader_then_followers(self):
        async def scenario():
            flights = SingleFlight()
            assert flights.leader("k")
            future = flights.begin("k")
            assert not flights.leader("k")
            joined = flights.join("k")
            assert joined is future
            flights.finish("k", result={"v": 1})
            assert await future == {"v": 1}
            assert flights.led == 1
            assert flights.coalesced == 1
            assert len(flights) == 0

        run(scenario())

    def test_error_reaches_every_follower(self):
        async def scenario():
            flights = SingleFlight()
            future = flights.begin("k")
            waiters = [
                asyncio.ensure_future(flights.wait("k", future))
                for _ in range(3)
            ]
            flights.finish("k", error=RuntimeError("boom"))
            for waiter in waiters:
                with pytest.raises(RuntimeError, match="boom"):
                    await waiter
            # The key is free again: a retry starts a fresh flight.
            assert flights.leader("k")

        run(scenario())

    def test_finish_unknown_key_is_noop(self):
        async def scenario():
            flights = SingleFlight()
            flights.finish("ghost", result=1)
            assert len(flights) == 0

        run(scenario())

    def test_join_missing_flight_returns_none(self):
        async def scenario():
            flights = SingleFlight()
            assert flights.join("k") is None
            assert flights.coalesced == 0

        run(scenario())

    def test_follower_cancellation_does_not_kill_the_flight(self):
        async def scenario():
            flights = SingleFlight()
            future = flights.begin("k")
            waiter = asyncio.ensure_future(flights.wait("k", future))
            await asyncio.sleep(0)
            waiter.cancel()
            await asyncio.sleep(0)
            # The shared future survives the follower's cancellation.
            flights.finish("k", result={"v": 2})
            assert await future == {"v": 2}

        run(scenario())
