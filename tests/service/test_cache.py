"""Result-cache tests: LRU bounds, durability, degradation, hygiene."""

import os

import pytest

from repro.errors import ExperimentError
from repro.resilience import faults
from repro.service.cache import ResultCache, clear_service_caches
from repro.workloads import clear_caches


class TestLRU:
    def test_get_put_and_stats(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k1") is None
        cache.put("k1", "bound", {"v": 1})
        assert cache.get("k1") == {"v": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert not stats["durable"]

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "bound", {"v": 1})
        cache.put("b", "bound", {"v": 2})
        assert cache.get("a") is not None  # refresh 'a'
        cache.put("c", "bound", {"v": 3})  # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_put_overwrites_in_place(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "bound", {"v": 1})
        cache.put("a", "bound", {"v": 2})
        assert len(cache) == 1
        assert cache.get("a") == {"v": 2}

    def test_bad_bound_rejected(self):
        with pytest.raises(ExperimentError):
            ResultCache(max_entries=0)


class TestDurability:
    def test_restart_recovers_entries(self, tmp_path):
        path = str(tmp_path / "cache.log")
        first = ResultCache(max_entries=8, path=path)
        first.put("k1", "bound", {"v": 1})
        first.put("k2", "mac", {"v": 2})
        first.close()

        warm = ResultCache(max_entries=8, path=path)
        assert warm.get("k1") == {"v": 1}
        assert warm.get("k2") == {"v": 2}
        warm.close()

    def test_restart_honors_entry_bound(self, tmp_path):
        path = str(tmp_path / "cache.log")
        first = ResultCache(max_entries=8, path=path)
        for i in range(6):
            first.put(f"k{i}", "bound", {"v": i})
        first.close()

        small = ResultCache(max_entries=2, path=path)
        assert len(small) == 2
        # The newest records win.
        assert small.get("k5") is not None
        assert small.get("k0") is None
        small.close()

    def test_torn_tail_does_not_poison_recovery(self, tmp_path):
        path = str(tmp_path / "cache.log")
        first = ResultCache(max_entries=8, path=path)
        first.put("good", "bound", {"v": 1})
        first.close()
        with open(path, "ab") as handle:
            handle.write(b'{"torn": ')  # crash mid-append

        recovered = ResultCache(max_entries=8, path=path)
        assert recovered.get("good") == {"v": 1}
        assert recovered.last_recovery is not None
        recovered.close()

    def test_write_fault_degrades_to_memory_only(self, tmp_path):
        path = str(tmp_path / "cache.log")
        plan = faults.FaultPlan.from_dict(
            {"faults": [
                {"site": "service.cache_write", "kind": "io-error"},
            ]}
        )
        cache = ResultCache(max_entries=8, path=path)
        with faults.chaos(plan):
            cache.put("k1", "bound", {"v": 1})
        # The request still succeeded in RAM...
        assert cache.get("k1") == {"v": 1}
        stats = cache.stats()
        assert stats["degraded"] is not None
        assert not stats["durable"]
        # ...and later puts don't resurrect the log.
        cache.put("k2", "bound", {"v": 2})
        cold = ResultCache(max_entries=8, path=path)
        assert cold.get("k1") is None
        cold.close()
        cache.close()


class TestProcessHygiene:
    def test_clear_caches_clears_service_caches(self):
        cache = ResultCache(max_entries=4)
        cache.put("k1", "bound", {"v": 1})
        clear_caches()  # the workloads-level entry point
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_clear_service_caches_direct(self):
        cache = ResultCache(max_entries=4)
        cache.put("k1", "bound", {"v": 1})
        clear_service_caches()
        assert cache.get("k1") is None

    def test_forked_child_starts_cold_and_detached(self, tmp_path):
        path = str(tmp_path / "cache.log")
        cache = ResultCache(max_entries=4, path=path)
        cache.put("k1", "bound", {"v": 1})
        pid = os.fork()
        if pid == 0:
            # Child: entries dropped, durable handle detached (not
            # closed — the parent still owns the descriptor).
            status = 0 if len(cache) == 0 and cache._log is None \
                else 1
            os._exit(status)
        _, wait_status = os.waitpid(pid, 0)
        assert os.WIFEXITED(wait_status)
        assert os.WEXITSTATUS(wait_status) == 0
        # Parent state untouched: entry present, log still writable.
        assert cache.get("k1") == {"v": 1}
        cache.put("k2", "bound", {"v": 2})
        assert cache.stats()["durable"]
        cache.close()
