"""The ``advise`` fast tier, end to end over a real socket.

The serving claims under test:

* ``advise`` is answered inline on the frontend — the worker-pool
  ``computed`` counter never moves, only ``static_answers``;
* repeated requests hit the result cache with byte-identical bodies;
* the offline client path renders the same bytes as the server;
* the sampling calibration loop replays requests exactly in the
  worker pool and records verdicts in the durable agreement ledger.
"""

import time

import pytest

from repro.service import (
    DEFAULT_AGREEMENT_GATE,
    AgreementLedger,
    CalibrationSampler,
    ServiceConfig,
    ledger_summary,
    start_in_thread,
)
from repro.service.client import ServiceClient, offline_response


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("advise") / "macs.sock")
    thread = start_in_thread(
        ServiceConfig(socket_path=sock, workers=1, client_limit=32)
    )
    yield thread
    thread.stop()


@pytest.fixture()
def client(server):
    with ServiceClient(server.endpoints[0]) as active:
        yield active


class TestAdviseFastTier:
    def test_round_trip_has_the_full_static_answer(self, client):
        response = client.advise("lfk1")
        assert response.ok
        body = response.body
        assert body["tier"] == "exact"
        assert body["exact"] is True
        assert body["cycles_low"] <= body["cycles"]
        assert body["cycles"] <= body["cycles_high"]
        assert body["macs"]["ma_cpl"] <= body["macs"]["macs_cpl"]
        assert body["advice"]
        assert body["metrics"]["flops"] > 0

    def test_never_spawns_a_worker(self, client):
        before = client.metrics()
        for kernel in ("lfk2", "lfk4", "lfk9"):
            assert client.advise(kernel).ok
        after = client.metrics()
        assert after["computed"] == before["computed"]
        assert (
            after["static_answers"] >= before["static_answers"] + 3
        )

    def test_repeat_hits_the_result_cache(self, client):
        first = client.advise("lfk10")
        second = client.advise("lfk10")
        assert first.origin in ("computed", "cache")
        assert second.origin == "cache"
        assert second.body == first.body

    def test_offline_render_matches_server_render(self, client):
        params = {"kernel": "lfk3"}
        served = client.request("advise", params)
        offline = offline_response("advise", params)
        assert served.ok and offline.ok
        assert offline.render() == served.render()
        assert offline.key == served.key

    def test_unknown_kernel_is_a_typed_usage_error(self, client):
        # Kernel names are validated at canonicalization, before any
        # tier runs — same typed error as every other request kind.
        response = client.request("advise", {"kernel": "nope"})
        assert response.status == "error"
        assert response.error["code"] == "usage"
        assert response.exit_code == 2
        assert "unknown workload" in response.error["message"]

    def test_scalar_kernel_is_served(self, client):
        response = client.advise("lfk5")
        assert response.ok
        assert response.body["macs"] is None
        assert response.body["tier"] == "exact"

    def test_shorthand_params_reach_the_static_tier(self, client):
        base = client.advise("lfk1")
        sized = client.advise("lfk1", n=64)
        assert sized.ok
        assert sized.body["cycles"] != base.body["cycles"]


class TestCalibrationLoop:
    def test_sampled_requests_land_in_the_ledger(self, tmp_path):
        sock = str(tmp_path / "cal.sock")
        ledger_path = str(tmp_path / "agreement.jsonl")
        thread = start_in_thread(
            ServiceConfig(
                socket_path=sock, workers=1,
                calibrate_every=1, ledger_path=ledger_path,
            )
        )
        try:
            with ServiceClient(thread.endpoints[0]) as client:
                assert client.advise("lfk1").ok
                deadline = time.time() + 60
                while time.time() < deadline:
                    snapshot = client.metrics()
                    if snapshot["calibrations"] >= 1:
                        break
                    time.sleep(0.1)
                else:
                    pytest.fail("calibration replay never completed")
                assert snapshot["calibration_flags"] == 0
                health = client.healthz()
                assert health["static_flagged"] is False
                assert health["static_widened_gates"] == 0
        finally:
            thread.stop()
        records = AgreementLedger(ledger_path).load()
        assert len(records) >= 1
        record = records[0]
        assert record["kernel"] == "lfk1"
        assert record["tier"] == "exact"
        assert record["rel_error"] == 0.0
        assert record["within_gate"] is True
        assert record["counters_match"] is True
        assert record["action"] == "ok"
        summary = ledger_summary(records)
        assert summary["breaches"] == 0
        assert summary["max_rel_error"] == 0.0


class TestSamplerPolicy:
    def test_every_n_sampling(self):
        sampler = CalibrationSampler(every=3)
        picks = [sampler.should_sample() for _ in range(9)]
        assert picks == [False, False, True] * 3

    def test_disabled_sampler_never_samples(self):
        sampler = CalibrationSampler(every=0)
        assert not any(sampler.should_sample() for _ in range(10))

    def test_exact_tier_delta_is_flagged(self):
        sampler = CalibrationSampler(every=1)
        verdict = sampler.judge(
            "lfk1", "k",
            {"tier": "exact", "cycles": 101.0,
             "metrics": {"flops": 10}},
            {"cycles": 100.0, "flops": 10},
        )
        assert verdict.action == "flagged"
        assert not verdict.within_gate
        assert sampler.flagged

    def test_model_tier_breach_widens_the_gate(self):
        sampler = CalibrationSampler(every=1)
        verdict = sampler.judge(
            "lfk1", "k",
            {"tier": "model", "cycles": 110.0,
             "metrics": {"flops": 10}},
            {"cycles": 100.0, "flops": 10},
        )
        assert verdict.action == "widened"
        assert sampler.widened_gates["lfk1"] == pytest.approx(
            0.1 * 1.25
        )
        assert not sampler.flagged
        # The widened gate now admits the same drift.
        second = sampler.judge(
            "lfk1", "k",
            {"tier": "model", "cycles": 110.0,
             "metrics": {"flops": 10}},
            {"cycles": 100.0, "flops": 10},
        )
        assert second.action == "ok"
        assert second.within_gate

    def test_agreement_within_gate_is_ok(self):
        sampler = CalibrationSampler(every=1)
        verdict = sampler.judge(
            "lfk1", "k",
            {"tier": "model",
             "cycles": 100.0 * (1 + DEFAULT_AGREEMENT_GATE / 2),
             "metrics": {"flops": 10}},
            {"cycles": 100.0, "flops": 10},
        )
        assert verdict.action == "ok"
        assert verdict.within_gate

    def test_counter_mismatch_is_reported(self):
        sampler = CalibrationSampler(every=1)
        verdict = sampler.judge(
            "lfk1", "k",
            {"tier": "model", "cycles": 100.0,
             "metrics": {"flops": 11}},
            {"cycles": 100.0, "flops": 10},
        )
        assert not verdict.counters_match
        assert "flops" in verdict.mismatched_counters
