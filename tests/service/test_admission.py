"""Admission-control unit tests."""

import pytest

from repro.errors import ExperimentError
from repro.service.admission import AdmissionController


class TestAdmission:
    def test_admits_until_queue_limit(self):
        control = AdmissionController(queue_limit=2, client_limit=10)
        assert control.admit("c1", leader=True) is None
        assert control.admit("c1", leader=True) is None
        rejection = control.admit("c1", leader=True)
        assert rejection is not None
        assert "queue full" in rejection.reason
        assert control.rejections == 1

    def test_followers_do_not_consume_queue(self):
        control = AdmissionController(queue_limit=1, client_limit=10)
        assert control.admit("c1", leader=True) is None
        # Coalesced followers ride along for free.
        for _ in range(5):
            assert control.admit("c1", leader=False) is None
        assert control.queue_depth == 1

    def test_per_client_limit(self):
        control = AdmissionController(queue_limit=10, client_limit=2)
        assert control.admit("c1", leader=False) is None
        assert control.admit("c1", leader=False) is None
        rejection = control.admit("c1", leader=False)
        assert rejection is not None
        assert "client in-flight" in rejection.reason
        # Another client is unaffected.
        assert control.admit("c2", leader=False) is None

    def test_release_restores_capacity(self):
        control = AdmissionController(queue_limit=1, client_limit=1)
        assert control.admit("c1", leader=True) is None
        assert control.admit("c1", leader=True) is not None
        control.release("c1", leader=True)
        assert control.queue_depth == 0
        assert control.client_in_flight("c1") == 0
        assert control.admit("c1", leader=True) is None

    def test_retry_after_scales_with_overload(self):
        control = AdmissionController(
            queue_limit=1, client_limit=10, retry_after_s=0.1
        )
        control.admit("c1", leader=True)
        first = control.admit("c2", leader=True)
        assert first.retry_after_s == pytest.approx(0.1)

    def test_bad_limits_rejected(self):
        with pytest.raises(ExperimentError):
            AdmissionController(queue_limit=0)
        with pytest.raises(ExperimentError):
            AdmissionController(client_limit=0)

    def test_release_is_safe_when_not_admitted(self):
        control = AdmissionController()
        control.release("ghost", leader=True)  # must not underflow
        assert control.queue_depth == 0
