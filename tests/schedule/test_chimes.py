"""Chime partitioning tests (paper §3.3 rules)."""

import pytest

from repro.errors import ScheduleError
from repro.isa import parse_instruction as pi
from repro.schedule import (
    Chime,
    ChimeRules,
    REFRESH_FACTOR,
    partition_chimes,
)


def instructions(*lines):
    return [pi(line) for line in lines]


LFK1_BODY = instructions(
    "mov s0,VL",
    "ld.l zx+80(a5),v0",
    "mul.d v0,s1,v1",
    "ld.l zx+88(a5),v2",
    "mul.d v2,s3,v0",
    "add.d v1,v0,v3",
    "ld.l y+0(a5),v1",
    "mul.d v1,v3,v2",
    "add.d v2,s7,v0",
    "st.l v0,x+0(a5)",
    "add.w #1024,a5",
    "sub.w #128,s0",
    "lt.w #0,s0",
    "jbrs.t L7",
)


class TestLFK1Partition:
    def test_four_chimes(self):
        partition = partition_chimes(LFK1_BODY)
        assert len(partition) == 4

    def test_chime_contents(self):
        partition = partition_chimes(LFK1_BODY)
        sizes = [len(c) for c in partition.chimes]
        assert sizes == [2, 3, 3, 1]

    def test_paper_chime_cycles(self):
        """Paper §3.5: 131 + 132 + 132 + 132 = 527."""
        partition = partition_chimes(LFK1_BODY)
        from repro.isa.timing import default_timing_table

        timings = default_timing_table()
        cycles = [c.cycles(128, timings) for c in partition.chimes]
        assert cycles == [131.0, 132.0, 132.0, 132.0]

    def test_total_with_refresh(self):
        partition = partition_chimes(LFK1_BODY)
        assert partition.total_cycles(128) == pytest.approx(527 * 1.02)

    def test_cpl(self):
        partition = partition_chimes(LFK1_BODY)
        assert partition.cpl(128) == pytest.approx(4.19953125)

    def test_scalar_ops_masked(self):
        partition = partition_chimes(LFK1_BODY)
        assert partition.masked_scalar_ops == 5
        assert partition.vector_instructions() == 9


class TestPipeRule:
    def test_two_loads_split(self):
        body = instructions("ld.l a+0(a5),v0", "ld.l b+0(a5),v1")
        assert len(partition_chimes(body)) == 2

    def test_three_pipes_share(self):
        body = instructions(
            "ld.l a+0(a5),v0",
            "add.d v0,v1,v2",
            "mul.d v2,v3,v5",
        )
        assert len(partition_chimes(body)) == 1

    def test_two_adds_split(self):
        body = instructions("add.d v0,v1,v2", "add.d v2,v3,v5")
        assert len(partition_chimes(body)) == 2


class TestRegisterPairRule:
    def test_excess_reads_split(self):
        """Paper's example: three reads of the {v2,v6} pair."""
        body = instructions("add.d v2,v6,v6", "mul.d v6,v1,v4")
        partition = partition_chimes(body)
        assert len(partition) == 2

    def test_excess_writes_split(self):
        """Paper's example: two writes to the {v2,v6} pair."""
        body = instructions("add.d v1,v0,v2", "mul.d v2,v1,v6")
        partition = partition_chimes(body)
        assert len(partition) == 2

    def test_two_reads_one_write_allowed(self):
        body = instructions("add.d v0,v1,v2", "mul.d v3,v5,v6")
        # v2/v6 pair: one write each... v2 write + v6 write: 2 writes to
        # pair 2 -> split.
        assert len(partition_chimes(body)) == 2

    def test_rule_can_be_disabled(self):
        body = instructions("add.d v2,v6,v6", "mul.d v6,v1,v4")
        relaxed = ChimeRules(enforce_register_pairs=False)
        assert len(partition_chimes(body, relaxed)) == 1


class TestScalarMemoryRule:
    def test_scalar_load_terminates_memory_chime(self):
        body = instructions(
            "ld.l a+0(a5),v0",
            "mul.d v0,s1,v1",
            "ld.l c+0(a0),s2",
            "add.d v1,s2,v2",
        )
        partition = partition_chimes(body)
        assert partition.scalar_memory_splits == 1
        assert len(partition) == 2

    def test_fp_only_chime_spans_scalar_memory(self):
        """The LFK8 asymmetry: t_f'' chimes ignore scalar loads."""
        body = instructions(
            "mul.d v0,s1,v1",
            "ld.l c+0(a0),s2",
            "add.d v1,s2,v2",
        )
        partition = partition_chimes(body)
        assert len(partition) == 1
        assert partition.scalar_memory_splits == 0

    def test_vector_memory_after_scalar_memory_splits(self):
        body = instructions(
            "mul.d v0,s1,v1",
            "ld.l c+0(a0),s2",
            "ld.l a+0(a5),v2",
        )
        partition = partition_chimes(body)
        assert len(partition) == 2

    def test_rule_can_be_disabled(self):
        body = instructions(
            "ld.l a+0(a5),v0",
            "ld.l c+0(a0),s2",
            "add.d v0,s2,v2",
        )
        relaxed = ChimeRules(scalar_memory_splits=False)
        assert len(partition_chimes(body, relaxed)) == 1


class TestCosts:
    def test_reduction_chime_rate(self):
        """A chime with sum.d costs 1.35 * VL (Table 1's Z)."""
        body = instructions("ld.l a+0(a5),v0", "sum.d v0,s1")
        partition = partition_chimes(body)
        from repro.isa.timing import default_timing_table

        cycles = partition.chimes[0].cycles(
            128, default_timing_table()
        )
        assert cycles == pytest.approx(1.35 * 128 + 2)  # B: ld=2, sum=0

    def test_empty_chime_rejected(self):
        from repro.isa.timing import default_timing_table

        with pytest.raises(ScheduleError):
            Chime([]).cycles(128, default_timing_table())

    def test_refresh_applies_only_to_long_memory_runs(self):
        # 2 memory chimes + 2 fp-only chimes: no run of 4.
        body = instructions(
            "ld.l a+0(a5),v0",
            "add.d v0,v1,v2",   # joins the load chime
            "add.d v2,v3,v5",   # new chime (add pipe busy)
            "mul.d v5,v3,v1",   # joins
            "neg.d v1,v3",      # new chime
        )
        partition = partition_chimes(body)
        no_refresh = partition.total_cycles(128, refresh=False)
        with_refresh = partition.total_cycles(128, refresh=True)
        assert with_refresh == no_refresh

    def test_all_memory_chimes_always_refreshed(self):
        """The loop repeats: 2 memory chimes form an unbounded run."""
        body = instructions("ld.l a+0(a5),v0", "ld.l b+0(a5),v1")
        partition = partition_chimes(body)
        assert partition.total_cycles(128) == pytest.approx(
            (130 + 130) * REFRESH_FACTOR
        )

    def test_circular_run_detection(self):
        # memory, fp, memory, memory, memory: circular run of 4
        # (3 at the end + 1 at the start).
        body = instructions(
            "ld.l a+0(a5),v0",
            "add.d v0,v1,v2",
            "add.d v2,v3,v5",   # fp-only chime
            "ld.l b+0(a5),v1",
            "ld.l c+0(a5),v3",
            "st.l v2,d+0(a5)",
        )
        partition = partition_chimes(body)
        flags = [c.has_memory_op for c in partition.chimes]
        assert flags == [True, False, True, True, True]
        with_refresh = partition.total_cycles(128)
        no_refresh = partition.total_cycles(128, refresh=False)
        # The 4 memory chimes picked up the 2% factor, the fp one not.
        memory_cycles = sum(
            c.cycles(128, None if False else __import__(
                "repro.isa.timing", fromlist=["default_timing_table"]
            ).default_timing_table())
            for c in partition.chimes if c.has_memory_op
        )
        assert with_refresh == pytest.approx(
            no_refresh + memory_cycles * (REFRESH_FACTOR - 1.0)
        )
