"""Property-based end-to-end tests: random loops through the whole
stack (parser → vectorizer → allocator → codegen → simulator) must
match an independent NumPy interpretation of the same AST."""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_kernel
from repro.machine import Simulator
from repro.workloads import generate_loop


def run_generated(generated, data_seed):
    compiled = compile_kernel(generated.source, "prop")
    sim = Simulator(compiled.program)
    data = generated.make_data(random.Random(data_seed))
    for name, values in compiled.initial_data(data).items():
        sim.load_symbol(name, values)
    sim.memory.load_array(
        compiled.scalar_word_offset("n"),
        np.asarray([float(generated.n)]),
    )
    for name, value in generated.scalars.items():
        sim.memory.load_array(
            compiled.scalar_word_offset(name), np.asarray([value])
        )
    result = sim.run()
    return compiled, sim, data, result


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
def test_compiled_loops_match_numpy(seed, data_seed):
    generated = generate_loop(seed)
    compiled, sim, data, _ = run_generated(generated, data_seed)
    expected = generated.reference(data)
    if generated.is_reduction:
        actual = float(
            sim.memory.dump_array(
                compiled.scalar_word_offset("ACC"), 1
            )[0]
        )
        assert np.isclose(actual, expected, rtol=1e-9)
    else:
        out = sim.dump_symbol(generated.output_array)
        assert np.allclose(
            out[4 : 4 + generated.n], expected, rtol=1e-9
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_loops_vectorize(seed):
    generated = generate_loop(seed)
    compiled = compile_kernel(generated.source, "prop")
    assert compiled.loops[0].vectorized, compiled.loops[0].reason


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_bounds_ordered_against_measurement(seed):
    """MAC is a strict resource bound: measured time dominates it.

    MACS is the paper's *sequential-chime* schedule model; when the
    partition has more chimes than the binding resource (an unmergeable
    FP chime on an otherwise idle pipe), the machine can recover part
    of that slot through cross-chime overlap, so MACS is only asserted
    within a 10% modeling tolerance (see docs/model.md).
    """
    from repro.model import mac_bound, mac_counts, macs_bound
    from repro.model.macs import inner_loop_body

    generated = generate_loop(seed, allow_reduction=False)
    compiled, _, _, result = run_generated(generated, seed + 1)
    iterations = generated.n
    measured_cpl = result.cycles / iterations
    if iterations < 128:
        return  # short loops pay un-amortized startup; bound is steady-state
    mac = mac_bound(mac_counts(inner_loop_body(compiled.program)))
    assert measured_cpl >= mac.cpl - 1e-9
    macs = macs_bound(compiled.program)
    assert measured_cpl >= 0.90 * macs.cpl


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_ma_bound_is_least(seed):
    from repro.model import ma_bound, ma_counts, mac_bound, mac_counts
    from repro.model.macs import inner_loop_body, macs_bound

    generated = generate_loop(seed)
    compiled = compile_kernel(generated.source, "prop")
    plan = compiled.innermost_vector_plan()
    ma = ma_bound(ma_counts(plan.analysis))
    mac = mac_bound(mac_counts(inner_loop_body(compiled.program)))
    macs = macs_bound(compiled.program)
    assert ma.cpl <= mac.cpl + 1e-9
    assert mac.cpl <= macs.cpl + 1e-9
