"""Property tests: the static predictor vs the simulator.

Random generated loops, both with the steady-state fast path enabled
and disabled.  The contract under test is the predictor's tier label:

* **exact tier** (``prediction.exact``) is a bit-exactness claim —
  cycles and every counter must equal the simulator's observed run;
* **model tier** answers are bounds — the observed cycle count must
  fall inside ``[cycles_low, cycles_high]``.
"""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import predict_program
from repro.compiler import compile_kernel
from repro.compiler.scalar import LITERALS_SYMBOL, SCALARS_SYMBOL
from repro.machine import DEFAULT_CONFIG, Simulator
from repro.workloads import generate_loop


def known_memory_for(generated, compiled):
    """Exactly the words ``simulate`` below makes non-opaque."""
    known = {}
    layout = compiled.program.layout
    scalars = layout.lookup(SCALARS_SYMBOL)
    for word in range(
        scalars.offset_words,
        scalars.offset_words + scalars.size_bytes // 8,
    ):
        known[word] = 0.0
    if compiled.literal_values:
        base = layout.lookup(LITERALS_SYMBOL).offset_words
        for index, value in enumerate(compiled.literal_values):
            known[base + index] = float(value)
    known[compiled.scalar_word_offset("n")] = float(generated.n)
    for name, value in generated.scalars.items():
        known[compiled.scalar_word_offset(name)] = float(value)
    return known


def simulate(generated, compiled, data_seed, config):
    sim = Simulator(compiled.program, config=config)
    data = generated.make_data(random.Random(data_seed))
    for name, values in compiled.initial_data(data).items():
        sim.load_symbol(name, values)
    sim.memory.load_array(
        compiled.scalar_word_offset("n"),
        np.asarray([float(generated.n)]),
    )
    for name, value in generated.scalars.items():
        sim.memory.load_array(
            compiled.scalar_word_offset(name), np.asarray([value])
        )
    return sim.run()


def check_one(seed, data_seed, config):
    generated = generate_loop(seed)
    compiled = compile_kernel(generated.source, "prop")
    prediction = predict_program(
        compiled.program,
        config,
        known_memory=known_memory_for(generated, compiled),
        trips=(generated.n,),
    )
    result = simulate(generated, compiled, data_seed, config)
    if prediction.exact:
        assert prediction.cycles == result.cycles
        assert (
            prediction.instructions_executed
            == result.instructions_executed
        )
        assert (
            prediction.vector_instructions
            == result.vector_instructions
        )
        assert (
            prediction.scalar_instructions
            == result.scalar_instructions
        )
        assert (
            prediction.vector_memory_ops == result.vector_memory_ops
        )
        assert (
            prediction.scalar_memory_ops == result.scalar_memory_ops
        )
        assert prediction.flops == result.flops
        assert prediction.cycles_low == prediction.cycles_high
    else:
        assert prediction.tier == "model"
        assert prediction.cycles_low <= prediction.cycles_high
        assert (
            prediction.cycles_low
            <= result.cycles
            <= prediction.cycles_high
        )
    return prediction


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
def test_prediction_tracks_simulator_with_fastpath(seed, data_seed):
    check_one(seed, data_seed, DEFAULT_CONFIG)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
def test_prediction_tracks_simulator_without_fastpath(seed, data_seed):
    check_one(seed, data_seed, DEFAULT_CONFIG.without_fastpath())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_prediction_is_data_independent(seed):
    """Two different data seeds cannot change the prediction's claim.

    The predictor never sees array data, so whatever it predicts must
    hold across all data fillings — the core soundness property of
    the timing abstraction.
    """
    first = check_one(seed, 1, DEFAULT_CONFIG)
    second = check_one(seed, 2, DEFAULT_CONFIG)
    assert first == second
