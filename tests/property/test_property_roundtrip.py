"""Property test: assembly printing and parsing are inverse."""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    Immediate,
    Instruction,
    MemRef,
    areg,
    format_instruction,
    parse_instruction,
    sreg,
    vreg,
)

registers = st.one_of(
    st.integers(0, 7).map(areg),
    st.integers(0, 7).map(sreg),
    st.integers(0, 7).map(vreg),
)

memrefs = st.builds(
    MemRef,
    base=st.integers(0, 7).map(areg),
    displacement=st.integers(-4096, 4096).map(lambda v: v * 8),
    symbol=st.one_of(st.none(), st.sampled_from(["x", "space1", "PX"])),
    stride_words=st.sampled_from([-8, -1, 0, 1, 2, 5, 25, 64]),
)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(
        ["vld", "vst", "alu3", "alu2", "neg", "sum", "mov", "cmp"]
    ))
    reg = lambda: draw(registers)
    v = lambda: vreg(draw(st.integers(0, 7)))
    if kind == "vld":
        return Instruction("ld", (draw(memrefs), v()), suffix="l")
    if kind == "vst":
        return Instruction("st", (v(), draw(memrefs)), suffix="l")
    if kind == "alu3":
        mnemonic = draw(st.sampled_from(["add", "sub", "mul", "div"]))
        return Instruction(mnemonic, (v(), v(), v()), suffix="d")
    if kind == "alu2":
        mnemonic = draw(st.sampled_from(["add", "sub", "mul"]))
        return Instruction(
            mnemonic,
            (Immediate(draw(st.integers(-10_000, 10_000))), reg()),
            suffix="w",
        )
    if kind == "neg":
        return Instruction("neg", (v(), v()), suffix="d")
    if kind == "sum":
        return Instruction(
            "sum", (v(), sreg(draw(st.integers(0, 7)))), suffix="d"
        )
    if kind == "mov":
        return Instruction(
            "mov",
            (Immediate(draw(st.integers(-100, 100))), reg()),
            suffix="w",
        )
    return Instruction(
        "lt", (Immediate(draw(st.integers(-5, 5))), reg()), suffix="w"
    )


@settings(max_examples=200)
@given(instructions())
def test_format_parse_round_trip(instr):
    reparsed = parse_instruction(format_instruction(instr).strip())
    assert reparsed.mnemonic == instr.mnemonic
    assert reparsed.suffix == instr.suffix
    assert reparsed.operands == instr.operands


@settings(max_examples=100)
@given(instructions())
def test_classification_survives_round_trip(instr):
    reparsed = parse_instruction(format_instruction(instr).strip())
    assert reparsed.is_vector == instr.is_vector
    assert reparsed.pipe == instr.pipe
    assert reparsed.is_vector_fp == instr.is_vector_fp
