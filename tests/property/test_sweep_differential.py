"""Differential properties of the sweep engine.

Two families of hypothesis-generated grids:

* **sweep vs loop** — for any grid, `run_sweep` (sequential or
  parallel) must produce metrics bit-identical to a plain
  `run_kernel` loop over the same cells;
* **fastpath differential** — on randomized `MachineConfig`s, the
  steady-state fast path must not change a single cycle or counter.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.machine import DEFAULT_CONFIG
from repro.sweep import OPTION_VARIANTS, SweepTask, run_sweep
from repro.workloads import run_kernel, workload
from repro.workloads.runner import sized_spec

#: Cheap single-loop kernels (small native problem sizes).
KERNEL_NAMES = ("lfk1", "lfk3", "lfk11", "lfk12", "daxpy")

VARIANT_NAMES = tuple(OPTION_VARIANTS)


def configs(allow_no_fastpath: bool = True):
    """Randomized-but-valid MachineConfig variations."""
    return st.builds(
        DEFAULT_CONFIG.replace,
        scalar_load_latency=st.integers(min_value=1, max_value=6),
        branch_taken_penalty=st.integers(min_value=0, max_value=4),
        refresh_enabled=st.booleans(),
        memory_contention_factor=st.sampled_from([1.0, 1.2, 1.5]),
        fastpath=(
            st.booleans() if allow_no_fastpath else st.just(True)
        ),
    )


def grids():
    return st.lists(
        st.builds(
            SweepTask,
            workload=st.sampled_from(KERNEL_NAMES),
            options=st.sampled_from(
                [OPTION_VARIANTS[name] for name in VARIANT_NAMES]
            ),
            config=configs(),
            n=st.sampled_from([None, 32, 100]),
        ),
        min_size=1,
        max_size=4,
    )


def reference_metrics(task: SweepTask) -> dict:
    """What a plain sequential run_kernel loop computes for one cell."""
    spec = workload(task.workload)
    if task.n is not None:
        spec = sized_spec(spec, task.n)
    run = run_kernel(spec, task.options, task.config)
    return {
        "cycles": run.result.cycles,
        "instructions": run.result.instructions_executed,
        "vector_instructions": run.result.vector_instructions,
        "scalar_instructions": run.result.scalar_instructions,
        "vector_memory_ops": run.result.vector_memory_ops,
        "scalar_memory_ops": run.result.scalar_memory_ops,
        "flops": run.result.flops,
        "cpl": run.cpl(),
        "cpf": run.cpf(),
    }


class TestSweepMatchesSequentialLoop:
    @given(tasks=grids())
    @settings(max_examples=25, deadline=None)
    def test_sequential_sweep_is_bit_identical(self, tasks):
        result = run_sweep(tasks, jobs=1)
        assert len(result.outcomes) == len(tasks)
        for task, outcome in zip(tasks, result.outcomes):
            assert outcome.ok, outcome.error
            expected = reference_metrics(task)
            for name, value in expected.items():
                assert outcome.metrics[name] == value, (
                    f"{task.key}: {name}"
                )

    @given(tasks=grids())
    @settings(
        max_examples=5, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_parallel_sweep_is_bit_identical(self, tasks):
        sequential = run_sweep(tasks, jobs=1)
        parallel = run_sweep(tasks, jobs=2)
        assert parallel.results_jsonl() == sequential.results_jsonl()


class TestFastpathDifferential:
    @given(
        name=st.sampled_from(KERNEL_NAMES),
        variant=st.sampled_from(VARIANT_NAMES),
        config=configs(allow_no_fastpath=False),
        n=st.sampled_from([None, 32, 100]),
    )
    @settings(max_examples=30, deadline=None)
    def test_fastpath_cycles_agree_on_random_configs(
        self, name, variant, config, n
    ):
        options = OPTION_VARIANTS[variant]
        spec = workload(name)
        if n is not None:
            spec = sized_spec(spec, n)
        fast = run_kernel(spec, options, config)
        slow = run_kernel(spec, options, config.without_fastpath())
        assert fast.result.cycles == slow.result.cycles
        assert (
            fast.result.instructions_executed
            == slow.result.instructions_executed
        )
        assert fast.result.flops == slow.result.flops
        assert (
            fast.result.vector_instructions
            == slow.result.vector_instructions
        )
