"""Property-based tests of the chime partitioner's invariants."""

from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, MemRef, areg, sreg, vreg
from repro.isa.instructions import Pipe
from repro.isa.timing import default_timing_table
from repro.schedule import ChimeRules, partition_chimes


@st.composite
def random_instruction(draw):
    kind = draw(st.sampled_from(
        ["load", "store", "add", "sub", "mul", "neg",
         "scalar_alu", "scalar_load"]
    ))
    v = lambda: vreg(draw(st.integers(0, 7)))
    if kind == "load":
        return Instruction("ld", (MemRef(areg(5)), v()), suffix="l")
    if kind == "store":
        return Instruction("st", (v(), MemRef(areg(5))), suffix="l")
    if kind == "neg":
        return Instruction("neg", (v(), v()), suffix="d")
    if kind == "scalar_alu":
        return Instruction("add", (sreg(0), sreg(1), sreg(2)),
                           suffix="w")
    if kind == "scalar_load":
        return Instruction("ld", (MemRef(areg(0)), sreg(1)), suffix="l")
    return Instruction(kind, (v(), v(), v()), suffix="d")


instruction_lists = st.lists(random_instruction(), min_size=1,
                             max_size=30)


@given(instruction_lists)
@settings(max_examples=100)
def test_every_vector_instruction_in_exactly_one_chime(instructions):
    partition = partition_chimes(instructions)
    total = sum(len(c) for c in partition.chimes)
    assert total == sum(1 for i in instructions if i.is_vector)


@given(instruction_lists)
@settings(max_examples=100)
def test_chime_structural_rules(instructions):
    partition = partition_chimes(instructions)
    for chime in partition.chimes:
        assert 1 <= len(chime) <= 3
        pipes = [i.pipe for i in chime.instructions]
        assert len(pipes) == len(set(pipes))
        # Register-pair constraints (2 reads / 1 write per pair).
        writes = {}
        reads = {}
        for instr in chime.instructions:
            for reg in instr.vector_writes:
                writes[reg.pair_index] = writes.get(
                    reg.pair_index, 0) + 1
            for operand in instr.sources:
                if getattr(operand, "is_vector", False):
                    reads[operand.pair_index] = reads.get(
                        operand.pair_index, 0) + 1
        assert all(count <= 1 for count in writes.values())
        assert all(count <= 2 for count in reads.values())


@given(instruction_lists)
@settings(max_examples=100)
def test_order_preserved(instructions):
    partition = partition_chimes(instructions)
    flattened = [
        instr for chime in partition.chimes
        for instr in chime.instructions
    ]
    assert flattened == [i for i in instructions if i.is_vector]


@given(instruction_lists)
@settings(max_examples=50)
def test_relaxed_rules_never_increase_chimes(instructions):
    strict = partition_chimes(instructions)
    relaxed = partition_chimes(
        instructions,
        ChimeRules(enforce_register_pairs=False,
                   scalar_memory_splits=False),
    )
    assert len(relaxed) <= len(strict)


@given(instruction_lists)
@settings(max_examples=50)
def test_cost_positive_and_bubble_monotone(instructions):
    partition = partition_chimes(instructions)
    if not partition.chimes:
        return
    timings = default_timing_table()
    with_bubbles = partition.total_cycles(128, timings)
    without = partition.total_cycles(
        128, timings.without_bubbles()
    )
    assert with_bubbles >= without > 0


@given(instruction_lists, st.integers(1, 128))
@settings(max_examples=50)
def test_cost_scales_with_vl(instructions, vl):
    partition = partition_chimes(instructions)
    if not partition.chimes:
        return
    small = partition.total_cycles(vl, refresh=False)
    big = partition.total_cycles(vl + 1, refresh=False)
    assert big >= small
