"""Property tests: random generated loops through the static analyzer.

Two invariants over the generator's whole output space:

* the analyzer (CFG + dataflow + linter) never crashes and never
  reports an error-severity finding on compiler-emitted code;
* the static counter oracle predicts the simulator's observed
  ``flops`` / ``vector_memory_ops`` / ``vector_instructions``
  counters exactly.
"""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    LintOptions,
    Severity,
    lint_program,
    static_counts,
    static_critical_path,
)
from repro.compiler import compile_kernel
from repro.machine import Simulator
from repro.workloads import generate_loop


def simulate(generated, data_seed):
    compiled = compile_kernel(generated.source, "prop")
    sim = Simulator(compiled.program)
    data = generated.make_data(random.Random(data_seed))
    for name, values in compiled.initial_data(data).items():
        sim.load_symbol(name, values)
    sim.memory.load_array(
        compiled.scalar_word_offset("n"),
        np.asarray([float(generated.n)]),
    )
    for name, value in generated.scalars.items():
        sim.memory.load_array(
            compiled.scalar_word_offset(name), np.asarray([value])
        )
    return compiled, sim.run()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_analyzer_accepts_generated_loops(seed):
    generated = generate_loop(seed)
    compiled = compile_kernel(generated.source, "prop")
    findings = lint_program(
        compiled.program, LintOptions(trips=(generated.n,))
    )
    errors = [
        f.format() for f in findings if f.severity >= Severity.ERROR
    ]
    assert errors == []
    path = static_critical_path(compiled.program, (generated.n,))
    assert path.chime_count >= 1
    assert path.estimated_cycles > 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
def test_static_counts_match_simulator(seed, data_seed):
    generated = generate_loop(seed)
    compiled, result = simulate(generated, data_seed)
    counts = static_counts(compiled.program, (generated.n,))
    assert counts.flops == result.flops
    assert counts.vector_memory_ops == result.vector_memory_ops
    assert counts.vector_instructions == result.vector_instructions
