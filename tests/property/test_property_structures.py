"""Property-based tests on core data structures and invariants."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.lang.analysis import LinearForm
from repro.machine import MachineConfig, MemorySystem
from repro.units import (
    cpf_to_cpl,
    cpf_to_mflops,
    cpl_to_cpf,
    mflops_to_cpf,
    percent_of_bound,
)

# ----------------------------------------------------------------------
# LinearForm algebra
# ----------------------------------------------------------------------

names = st.sampled_from(["i", "k", "lw", "m"])
nonzero = st.integers(-50, 50).filter(lambda v: v != 0)
forms = st.builds(
    LinearForm,
    const=st.integers(-1000, 1000),
    coeffs=st.dictionaries(names, nonzero, max_size=3),
)


@given(forms, forms)
def test_linear_add_commutes(a, b):
    left = a.add(b)
    right = b.add(a)
    assert left.const == right.const
    assert left.coeffs == right.coeffs


@given(forms, st.integers(-20, 20))
def test_scale_distributes_over_const(form, factor):
    scaled = form.scale(factor)
    assert scaled.const == form.const * factor
    for name, coeff in form.coeffs.items():
        assert scaled.coeffs.get(name, 0) == coeff * factor


@given(forms)
def test_negate_is_scale_minus_one(form):
    negated = form.negate()
    assert negated.const == -form.const
    again = negated.negate()
    assert again.const == form.const
    assert again.coeffs == form.coeffs


@given(forms, forms)
def test_base_delta_antisymmetric(a, b):
    delta = a.base_delta(b)
    if delta is not None:
        assert b.base_delta(a) == -delta


@given(forms)
def test_base_delta_self_is_zero(form):
    assert form.base_delta(form) == 0


# ----------------------------------------------------------------------
# Memory bank rates
# ----------------------------------------------------------------------


@given(st.integers(-200, 200))
def test_stream_rate_bounds(stride):
    memory = MemorySystem(64, MachineConfig())
    rate = memory.stream_rate(stride)
    assert 1.0 <= rate <= 8.0


@given(st.integers(1, 200))
def test_stream_rate_sign_invariant(stride):
    memory = MemorySystem(64, MachineConfig())
    assert memory.stream_rate(stride) == memory.stream_rate(-stride)


@given(st.integers(0, 6))
def test_power_of_two_strides_degrade_monotonically(power):
    memory = MemorySystem(64, MachineConfig())
    stride = 2 ** power
    bigger = 2 ** (power + 1)
    assert memory.stream_rate(stride) <= memory.stream_rate(bigger)


@given(
    st.floats(0.0, 100_000.0, allow_nan=False),
    st.floats(0.0, 5_000.0, allow_nan=False),
)
def test_refresh_stall_nonnegative_and_bounded(start, span):
    memory = MemorySystem(64, MachineConfig())
    stall = memory.refresh_stall_for_stream(start, start + span)
    assert stall >= 0.0
    # At most one 8-cycle refresh per (400 - 8)-cycle stretch of work,
    # plus the partial window at the start.
    assert stall <= 8.0 * (span / 392.0 + 2.0)


# ----------------------------------------------------------------------
# Unit conversions
# ----------------------------------------------------------------------


@given(
    st.floats(0.01, 1000.0, allow_nan=False),
    st.integers(1, 100),
)
def test_cpl_cpf_round_trip(cpl, flops):
    assert cpf_to_cpl(cpl_to_cpf(cpl, flops), flops) == \
        __import__("pytest").approx(cpl)


@given(st.floats(0.01, 1000.0, allow_nan=False))
def test_mflops_round_trip(cpf):
    import pytest

    assert mflops_to_cpf(cpf_to_mflops(cpf)) == pytest.approx(cpf)


@given(
    st.floats(0.0, 100.0, allow_nan=False),
    st.floats(0.001, 100.0, allow_nan=False),
)
def test_percent_of_bound_scales(bound, measured):
    percent = percent_of_bound(bound, measured)
    assert percent >= 0.0
    if bound <= measured:
        assert percent <= 100.0 + 1e-9
