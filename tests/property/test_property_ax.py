"""Property tests of the A/X methodology over generated loops."""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_kernel
from repro.machine import Simulator
from repro.model import access_only_program, execute_only_program
from repro.workloads import generate_loop


def simulate(program, compiled, generated, data, prime=False):
    sim = Simulator(program)
    for name, values in compiled.initial_data(data).items():
        sim.load_symbol(name, values)
    sim.memory.load_array(
        compiled.scalar_word_offset("n"),
        np.asarray([float(generated.n)]),
    )
    for name, value in generated.scalars.items():
        sim.memory.load_array(
            compiled.scalar_word_offset(name), np.asarray([value])
        )
    if prime:
        sim.regfile.prime_vectors()
    return sim.run()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_eq18_bracket_on_generated_loops(seed):
    """MAX(t_a, t_x) <= t_p for arbitrary vectorizable loops."""
    generated = generate_loop(seed, allow_reduction=False)
    compiled = compile_kernel(generated.source, "axprop")
    data = generated.make_data(random.Random(seed + 7))
    full = simulate(compiled.program, compiled, generated, data)
    access = simulate(
        access_only_program(compiled.program), compiled, generated,
        data,
    )
    execute = simulate(
        execute_only_program(compiled.program), compiled, generated,
        data, prime=True,
    )
    assert full.cycles >= max(access.cycles, execute.cycles) - 1e-6
    # The loose serialization ceiling (shared scalar overhead means
    # the exact eq. 18 sum can be undershot by the parts).
    assert full.cycles <= access.cycles + execute.cycles + 200


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_transforms_partition_the_vector_instructions(seed):
    generated = generate_loop(seed)
    compiled = compile_kernel(generated.source, "axprop")
    program = compiled.program
    total_vector = sum(1 for i in program if i.is_vector)
    access = access_only_program(program)
    execute = execute_only_program(program)
    a_vec = sum(1 for i in access if i.is_vector)
    x_vec = sum(1 for i in execute if i.is_vector)
    # Every vector instruction is either memory or FP: the two reduced
    # codes partition them exactly.
    assert a_vec + x_vec == total_vector
    # Scalar instruction streams identical in both.
    assert [str(i).split(": ")[-1] for i in access
            if not i.is_vector] == \
        [str(i).split(": ")[-1] for i in execute if not i.is_vector]
