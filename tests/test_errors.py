"""Exception taxonomy tests: one catchable root, informative messages."""

import pytest

import repro.errors as errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "IsaError", "AsmSyntaxError", "UnknownOpcodeError",
            "OperandError", "RegisterError", "MachineError",
            "SimulationError", "MemoryError_", "LangError", "LexError",
            "ParseError", "SemanticError", "CompileError",
            "VectorizationError", "RegisterAllocationError",
            "ScheduleError", "ModelError", "WorkloadError",
            "ExperimentError", "StoreError", "BudgetExceededError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError)

    def test_budget_exceeded_carries_accounting(self):
        exc = errors.BudgetExceededError(
            "out of cycles", budget="cycles", spent=120.0, limit=100.0
        )
        assert exc.budget == "cycles"
        assert exc.spent == 120.0
        assert exc.limit == 100.0

    def test_memory_error_does_not_shadow_builtin(self):
        assert not issubclass(errors.MemoryError_, MemoryError)

    def test_asm_syntax_error_carries_line(self):
        exc = errors.AsmSyntaxError("bad token", line_number=7)
        assert "line 7" in str(exc)
        assert exc.line_number == 7

    def test_asm_syntax_error_without_line(self):
        exc = errors.AsmSyntaxError("bad token")
        assert exc.line_number is None

    def test_lex_error_position(self):
        exc = errors.LexError("bad char", 3, 14)
        assert "3:14" in str(exc)

    def test_parse_error_line(self):
        exc = errors.ParseError("unexpected", line=9)
        assert "line 9" in str(exc)

    def test_one_catch_covers_whole_stack(self):
        """A single except clause suffices at an API boundary."""
        from repro.workloads import kernel

        with pytest.raises(errors.ReproError):
            kernel("nonexistent")
