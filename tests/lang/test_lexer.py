"""Tokenizer tests."""

import pytest

from repro.errors import LexError
from repro.lang import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind not in
            (TokenKind.NEWLINE, TokenKind.EOF)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind not in
            (TokenKind.NEWLINE, TokenKind.EOF)]


class TestBasics:
    def test_leading_integer_is_label(self):
        tokens = tokenize("    1 X(k) = 0.0")
        assert tokens[0].kind is TokenKind.LABEL
        assert tokens[0].text == "1"

    def test_integer_not_at_line_start(self):
        tokens = tokenize("X = 1")
        assert tokens[2].kind is TokenKind.INT

    def test_keywords_case_insensitive(self):
        assert kinds("do 1 k = 1,n")[0] is TokenKind.KEYWORD
        assert texts("Do 1 k = 1,n")[0] == "DO"

    def test_identifiers_preserve_case(self):
        assert "ZX" in texts("ZX(k)")

    def test_real_literals(self):
        tokens = tokenize("X = 2.0")
        assert tokens[2].kind is TokenKind.REAL
        tokens = tokenize("X = 1.5E2")
        assert tokens[2].kind is TokenKind.REAL

    def test_operators(self):
        assert texts("a = (b + c)*d - e/f") == [
            "a", "=", "(", "b", "+", "c", ")", "*", "d", "-", "e",
            "/", "f",
        ]


class TestRelationalOperators:
    @pytest.mark.parametrize(
        "classic,modern",
        [(".GT.", ">"), (".LT.", "<"), (".GE.", ">="),
         (".LE.", "<="), (".EQ.", "=="), (".NE.", "/=")],
    )
    def test_dot_forms_normalized(self, classic, modern):
        assert texts(f"IF (a {classic} b) GOTO 1")[3] == modern

    def test_modern_forms(self):
        assert ">" in texts("IF (II > 1) GOTO 222")


class TestCommentsAndBlanks:
    def test_bang_comment_stripped(self):
        assert texts("X = 1 ! comment") == ["X", "=", "1"]

    def test_classic_comment_card(self):
        assert kinds("C this is a comment\nX = 1") == [
            TokenKind.IDENT, TokenKind.OP, TokenKind.INT,
        ]

    def test_blank_lines_skipped(self):
        tokens = tokenize("\n\nX = 1\n\n")
        assert tokens[0].kind is TokenKind.IDENT

    def test_position_info(self):
        token = tokenize("  X = 1")[0]
        assert token.line == 1 and token.column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("X = @")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize("X = $")
        assert info.value.line == 1
