"""Symbol table and semantic-check tests."""

import pytest

from repro.errors import SemanticError
from repro.lang import (
    ScalarType,
    analyze_program,
    implicit_type,
    parse_source,
)


class TestImplicitTyping:
    @pytest.mark.parametrize("name", ["i", "J", "k", "lw", "m", "n", "II"])
    def test_integers(self, name):
        assert implicit_type(name) is ScalarType.INTEGER

    @pytest.mark.parametrize("name", ["Q", "temp", "X", "acc", "SIG"])
    def test_reals(self, name):
        assert implicit_type(name) is ScalarType.REAL


class TestSymbolTable:
    def test_arrays_collected(self):
        table = analyze_program(
            parse_source("DIMENSION X(10), B(4,5)\nX(1) = B(2,3)\n")
        )
        assert table.array("X").dims == (10,)
        assert table.array("B").dims == (4, 5)

    def test_scalars_typed(self):
        table = analyze_program(parse_source("i = 1\nQ = 2.0\n"))
        assert table.is_integer("i")
        assert not table.is_integer("Q")

    def test_column_major_strides(self):
        table = analyze_program(parse_source("DIMENSION U(5,101,2)\n"))
        assert table.array("U").dim_strides() == (1, 5, 505)
        assert table.array("U").size_words == 1010

    def test_word_offset(self):
        table = analyze_program(parse_source("DIMENSION U(5,101,2)\n"))
        # U(2, 3, 1): (2-1) + (3-1)*5 + 0 = 11
        assert table.array("U").word_offset((2, 3, 1)) == 11

    def test_word_offset_bounds(self):
        table = analyze_program(parse_source("DIMENSION X(10)\n"))
        with pytest.raises(SemanticError):
            table.array("X").word_offset((11,))


class TestValidation:
    def test_undeclared_array(self):
        with pytest.raises(SemanticError):
            analyze_program(parse_source("X(1) = Y(1)\n"))

    def test_wrong_arity(self):
        with pytest.raises(SemanticError):
            analyze_program(
                parse_source("DIMENSION X(10)\nX(1,2) = 0.0\n")
            )

    def test_scalar_array_conflict(self):
        with pytest.raises(SemanticError):
            analyze_program(
                parse_source("DIMENSION X(10)\nX = 0.0\n")
            )

    def test_duplicate_dimension(self):
        with pytest.raises(SemanticError):
            analyze_program(
                parse_source("DIMENSION X(10), X(20)\n")
            )

    def test_real_loop_variable_rejected(self):
        with pytest.raises(SemanticError):
            analyze_program(
                parse_source("DO 1 q = 1,n\n1 CONTINUE\n")
            )

    def test_goto_target_must_exist(self):
        with pytest.raises(SemanticError):
            analyze_program(parse_source("IF (II > 1) GOTO 999\n"))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SemanticError):
            analyze_program(
                parse_source("    5 X = 1.0\n    5 Y = 2.0\n")
            )

    def test_all_lfk_kernels_analyze(self):
        from repro.workloads import CASE_STUDY_KERNELS

        for spec in CASE_STUDY_KERNELS:
            table = analyze_program(parse_source(spec.source))
            assert table.arrays
