"""Loop analysis tests: inductions, affine accesses, reductions,
dependence, constant propagation."""

import pytest

from repro.lang import (
    ArrayRef,
    DoLoop,
    VarRef,
    analyze_loop,
    analyze_program,
    parse_source,
    walk_statements,
)
from repro.lang.analysis import collect_integer_constants


def inner_loop(source):
    program = parse_source(source)
    loops = [
        s for s in walk_statements(program.statements)
        if isinstance(s, DoLoop)
    ]
    inner = [
        loop for loop in loops
        if not any(isinstance(s, DoLoop) for s in loop.body)
    ]
    return program, analyze_program(program), inner[0]


def analyzed(source, ivdep=False, constants=None):
    program, table, loop = inner_loop(source)
    if constants is None:
        constants = collect_integer_constants(program.statements)
    return analyze_loop(loop, table, ivdep=ivdep, constants=constants)


class TestInductions:
    def test_loop_counter_is_induction(self):
        analysis = analyzed(
            "DIMENSION X(10), Y(20)\nDO 1 k = 1,n\n1 X(k) = Y(k)\n"
        )
        assert analysis.inductions["k"].step == 1

    def test_derived_induction(self):
        analysis = analyzed(
            "DIMENSION X(500), Y(500)\n"
            "i = 0\n"
            "DO 1 k = 2,n,2\n"
            "i = i + 1\n"
            "1 X(i) = Y(k)\n",
            ivdep=True,
        )
        assert analysis.inductions["i"].step == 1
        assert analysis.inductions["k"].step == 2

    def test_pre_increment_shifts_base(self):
        """LFK2: i incremented before X(i) is written."""
        analysis = analyzed(
            "DIMENSION X(500), Y(500)\n"
            "i = 0\n"
            "DO 1 k = 2,n,2\n"
            "i = i + 1\n"
            "1 X(i) = Y(k)\n",
            ivdep=True,
        )
        store = analysis.stores[0]
        # X(i) with i pre-incremented: word = i_entry + 1 - 1 = i_entry.
        assert store.access.stride_words == 1
        assert store.access.base.const == 0

    def test_post_increment_unshifted(self):
        """LFK4: lw incremented after XZ(lw) is read."""
        analysis = analyzed(
            "DIMENSION XZ(500), Y(500)\n"
            "temp = 0.0\n"
            "lw = 1\n"
            "DO 1 j = 5,n,5\n"
            "temp = temp - XZ(lw)*Y(j)\n"
            "1 lw = lw + 1\n"
        )
        load = [s for s in analysis.loads
                if s.access.array == "XZ"][0]
        assert load.access.stride_words == 1
        assert load.access.base.const == -1  # lw_entry - 1 (1-based)


class TestAffineAccesses:
    def test_column_major_stride(self):
        analysis = analyzed(
            "DIMENSION PX(25,101)\nDO 1 i = 1,n\n"
            "1 PX(1,i) = PX(3,i)\n"
        )
        assert all(
            s.access.stride_words == 25 for s in analysis.streams
        )

    def test_negative_stride(self):
        analysis = analyzed(
            "DIMENSION W(100), B(65,64)\n"
            "DO 6 i = 2,n\nDO 6 k = 1,i-1\n"
            "6 W(i) = W(i) + B(i,k)*W(i-k)\n",
            ivdep=True,
        )
        w_load = [s for s in analysis.loads
                  if s.access.array == "W"][0]
        assert w_load.access.stride_words == -1

    def test_non_affine_rejected(self):
        analysis = analyzed(
            "DIMENSION X(100), Y(100)\nDO 1 k = 1,n\n"
            "1 X(k) = Y(k*k)\n"
        )
        assert not analysis.vectorizable
        assert "affine" in analysis.reason or "product" in analysis.reason


class TestReductions:
    def test_scalar_reduction(self):
        analysis = analyzed(
            "DIMENSION Z(10), X(10)\nQ = 0.0\nDO 3 k = 1,n\n"
            "3 Q = Q + Z(k)*X(k)\n"
        )
        assert analysis.reduction is not None
        assert analysis.reduction.op == "+"
        assert isinstance(analysis.reduction.target, VarRef)

    def test_subtractive_reduction(self):
        analysis = analyzed(
            "DIMENSION XZ(500), Y(500)\ntemp = 0.0\nlw = 1\n"
            "DO 4 j = 5,n,5\ntemp = temp - XZ(lw)*Y(j)\n"
            "4 lw = lw + 1\n"
        )
        assert analysis.reduction.op == "-"

    def test_array_element_reduction(self):
        analysis = analyzed(
            "DIMENSION W(100), B(65,64)\nDO 6 i = 2,n\n"
            "DO 6 k = 1,i-1\n6 W(i) = W(i) + B(i,k)*W(i-k)\n",
            ivdep=True,
        )
        assert isinstance(analysis.reduction.target, ArrayRef)

    def test_array_reduction_requires_ivdep_when_array_read(self):
        analysis = analyzed(
            "DIMENSION W(100), B(65,64)\nDO 6 i = 2,n\n"
            "DO 6 k = 1,i-1\n6 W(i) = W(i) + B(i,k)*W(i-k)\n",
            ivdep=False,
        )
        assert not analysis.vectorizable


class TestDependence:
    def test_true_recurrence_rejected(self):
        analysis = analyzed(
            "DIMENSION X(100)\nDO 1 k = 2,n\n"
            "1 X(k) = X(k-1)\n"
        )
        assert not analysis.vectorizable
        assert "recurrence" in analysis.reason

    def test_anti_dependence_load_first_ok(self):
        analysis = analyzed(
            "DIMENSION X(100)\nDO 1 k = 1,n\n"
            "1 X(k) = X(k+1)\n"
        )
        assert analysis.vectorizable

    def test_interleaved_streams_ok(self):
        """LFK10 pattern: stores and loads at distinct row offsets."""
        analysis = analyzed(
            "DIMENSION PX(25,101)\nDO 1 i = 1,n\n"
            "1 PX(1,i) = PX(3,i)\n"
        )
        assert analysis.vectorizable

    def test_same_element_forwarding_ok(self):
        analysis = analyzed(
            "DIMENSION D(100), X(100), Y(100)\nDO 1 k = 1,n\n"
            "D(k) = X(k) + Y(k)\n"
            "1 Y(k) = D(k)\n"
        )
        assert analysis.vectorizable

    def test_ivdep_overrides(self):
        analysis = analyzed(
            "DIMENSION X(100)\nDO 1 k = 2,n\n"
            "1 X(k) = X(k-1)\n",
            ivdep=True,
        )
        assert analysis.vectorizable

    def test_ziv_invariant_dimension_separates(self):
        """LFK8: nl1/nl2 planes are independent once propagated."""
        analysis = analyzed(
            "DIMENSION U(5,101,2)\n"
            "nl1 = 1\n"
            "nl2 = 2\n"
            "DO 8 ky = 2,n\n"
            "8 U(2,ky,nl2) = U(2,ky+1,nl1) - U(2,ky-1,nl1)\n"
        )
        assert analysis.vectorizable, analysis.reason

    def test_without_constants_unknown(self):
        analysis = analyzed(
            "DIMENSION U(5,101,2)\n"
            "nl1 = 1\n"
            "nl2 = 2\n"
            "DO 8 ky = 2,n\n"
            "8 U(2,ky,nl2) = U(2,ky+1,nl1) - U(2,ky-1,nl1)\n",
            constants={},
        )
        assert not analysis.vectorizable

    def test_control_flow_in_body_rejected(self):
        program = parse_source(
            "DIMENSION X(10)\n"
            "DO 1 k = 1,n\n"
            "IF (II > 1) GOTO 2\n"
            "1 X(k) = 0.0\n"
            "2 CONTINUE\n"
        )
        table = analyze_program(program)
        loop = program.statements[1]
        analysis = analyze_loop(loop, table)
        assert not analysis.vectorizable
        assert "control flow" in analysis.reason


class TestConstantPropagation:
    def test_chained_folding(self):
        program = parse_source(
            "m = (1001 - 7)/2\nmm = m + 1\n"
        )
        constants = collect_integer_constants(program.statements)
        assert constants == {"m": 497, "mm": 498}

    def test_reassigned_not_constant(self):
        program = parse_source("II = n\nII = II/2\n")
        constants = collect_integer_constants(program.statements)
        assert "II" not in constants

    def test_loop_assignments_excluded(self):
        program = parse_source(
            "DO 1 k = 1,n\n1 i = 2\n"
        )
        constants = collect_integer_constants(program.statements)
        assert "i" not in constants

    def test_runtime_rhs_not_constant(self):
        program = parse_source("m = n/2\n")
        assert collect_integer_constants(program.statements) == {}
