"""Mini-Fortran parser tests on the kernel shapes the paper uses."""

import pytest

from repro.errors import ParseError
from repro.lang import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    Continue,
    Dimension,
    DoLoop,
    IfGoto,
    VarRef,
    parse_source,
)


class TestExpressions:
    def parse_expr(self, text):
        program = parse_source(f"X = {text}")
        return program.statements[0].expr

    def test_precedence(self):
        expr = self.parse_expr("a + b*c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = self.parse_expr("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, BinOp)

    def test_parentheses(self):
        expr = self.parse_expr("(a + b)*c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = self.parse_expr("-a*b")
        assert expr.op == "*"

    def test_array_reference_multi_dim(self):
        expr = self.parse_expr("PX(5, i)")
        assert isinstance(expr, ArrayRef)
        assert len(expr.indices) == 2

    def test_integer_vs_real_constants(self):
        assert self.parse_expr("2").is_integer
        assert not self.parse_expr("2.0").is_integer


class TestDoLoops:
    def test_enddo_form(self):
        program = parse_source(
            "DO k = 1,n\nX(k) = Y(k)\nENDDO\n"
        )
        loop = program.statements[0]
        assert isinstance(loop, DoLoop)
        assert len(loop.body) == 1

    def test_label_terminated_form(self):
        program = parse_source(
            "      DO 1 k = 1,n\n    1 X(k) = Y(k)\n"
        )
        loop = program.statements[0]
        assert loop.terminal_label == "1"
        assert len(loop.body) == 1

    def test_shared_terminal_label_nested(self):
        """LFK6's shape: both loops close on statement 6."""
        program = parse_source(
            "      DO 6 i = 2,n\n"
            "      DO 6 k = 1,i-1\n"
            "    6 W(i) = W(i) + B(i,k)*W(i-k)\n"
        )
        outer = program.statements[0]
        assert isinstance(outer, DoLoop) and outer.var == "i"
        inner = outer.body[0]
        assert isinstance(inner, DoLoop) and inner.var == "k"
        assert len(inner.body) == 1
        assert len(program.statements) == 1

    def test_continue_terminated(self):
        program = parse_source(
            "      DO 444 k = 7,1001,m\n"
            "      lw = k - 6\n"
            "  444 CONTINUE\n"
        )
        loop = program.statements[0]
        assert isinstance(loop.body[-1], Continue)

    def test_step_expression(self):
        program = parse_source("DO 4 j = 5,n,5\n4 lw = lw + 1\n")
        loop = program.statements[0]
        assert isinstance(loop.step, Const)
        assert loop.step.value == 5.0

    def test_unclosed_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_source("DO 9 k = 1,n\nX(k) = 1\n")

    def test_stray_enddo_rejected(self):
        with pytest.raises(ParseError):
            parse_source("ENDDO\n")


class TestOtherStatements:
    def test_dimension(self):
        program = parse_source("DIMENSION X(1001), PX(25,101)\n")
        decl = program.statements[0]
        assert isinstance(decl, Dimension)
        assert decl.arrays == (
            ("X", (1001,)), ("PX", (25, 101)),
        )

    def test_if_goto(self):
        program = parse_source(
            "  222 IPNT = IPNTP\n      IF (II > 1) GOTO 222\n"
        )
        branch = program.statements[1]
        assert isinstance(branch, IfGoto)
        assert branch.target == "222"
        assert isinstance(branch.condition, Compare)

    def test_classic_relational(self):
        program = parse_source(
            "    1 X = 0.0\n      IF (II .GT. 1) GOTO 1\n"
        )
        assert program.statements[1].condition.op == ">"

    def test_scalar_assignment(self):
        program = parse_source("Q = 0.0\n")
        stmt = program.statements[0]
        assert isinstance(stmt.target, VarRef)

    def test_garbage_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_source("GOTO GOTO\n")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_source("X = 1 2\n")


class TestFullKernels:
    def test_lfk2_structure(self):
        from repro.workloads import LFK2

        program = parse_source(LFK2.source)
        # DIMENSION, 3 scalar assigns, (labelled) assigns, loop, if-goto
        assert any(isinstance(s, DoLoop) for s in program.statements)
        assert isinstance(program.statements[-1], IfGoto)

    def test_lfk8_structure(self):
        from repro.workloads import LFK8

        program = parse_source(LFK8.source)
        outer = [s for s in program.statements if isinstance(s, DoLoop)]
        assert len(outer) == 1
        inner = [s for s in outer[0].body if isinstance(s, DoLoop)]
        assert len(inner) == 1
        assert len(inner[0].body) == 6  # 3 DU + 3 U statements
