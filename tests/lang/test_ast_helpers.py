"""AST traversal/counting helper tests."""

from repro.lang import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DoLoop,
    VarRef,
    array_reads,
    count_fp_operations,
    parse_source,
    scalar_reads,
    walk_exprs,
    walk_statements,
)


def expr_of(text):
    return parse_source(f"X = {text}").statements[0].expr


class TestWalkers:
    def test_walk_exprs_depth_first(self):
        expr = expr_of("A(k) + B(k)*Q")
        nodes = list(walk_exprs(expr))
        assert sum(isinstance(n, ArrayRef) for n in nodes) == 2
        assert sum(isinstance(n, VarRef) for n in nodes) >= 3  # k, k, Q

    def test_walk_statements_recurses(self):
        program = parse_source(
            "DO 1 i = 1,n\nDO 1 k = 1,n\n1 X = 0.0\n"
        )
        statements = list(walk_statements(program.statements))
        assert sum(isinstance(s, DoLoop) for s in statements) == 2
        assert sum(isinstance(s, Assign) for s in statements) == 1

    def test_scalar_reads(self):
        assert scalar_reads(expr_of("Q + R*A(k)")) == {"Q", "R", "k"}


class TestArrayReads:
    def test_rhs_and_target_indices(self):
        program = parse_source("DIMENSION A(9), B(9)\nA(1) = B(2)\n")
        stmt = program.statements[1]
        reads = array_reads(stmt)
        assert [r.name for r in reads] == ["B"]


class TestFpCounting:
    def test_basic_split(self):
        adds, muls = count_fp_operations(expr_of("a + b*c - d/e"))
        assert (adds, muls) == (2, 2)

    def test_unary_minus_counts_as_add(self):
        adds, muls = count_fp_operations(expr_of("-a*b"))
        assert (adds, muls) == (1, 1)

    def test_index_arithmetic_excluded(self):
        adds, muls = count_fp_operations(expr_of("A(k+10) + A(2*k)"))
        assert (adds, muls) == (1, 0)

    def test_lfk7_counts(self):
        from repro.workloads import LFK7

        program = parse_source(LFK7.source)
        loop = next(
            s for s in program.statements if isinstance(s, DoLoop)
        )
        adds, muls = count_fp_operations(loop.body[0].expr)
        assert (adds, muls) == (8, 8)

    def test_str_renderings(self):
        assert str(Const(2.0, is_integer=True)) == "2"
        assert "DO" in str(
            parse_source("DO 1 k = 1,n\n1 X = 0.0\n").statements[0]
        )
