"""Unit conversion tests."""

import pytest

from repro.errors import ModelError
from repro.units import (
    CLOCK_MHZ,
    average_cpf,
    cpf_to_mflops,
    cpl_to_cpf,
    cycles_per_vector_iteration,
    cycles_to_seconds,
    harmonic_mean_mflops,
    percent_of_bound,
    seconds_to_cycles,
)


class TestConversions:
    def test_clock_rate(self):
        assert CLOCK_MHZ == 25.0  # 40 ns

    def test_cpl_to_cpf(self):
        assert cpl_to_cpf(3.0, 5) == pytest.approx(0.6)  # LFK1 MA

    def test_cpf_to_mflops(self):
        assert cpf_to_mflops(1.0) == pytest.approx(25.0)

    def test_paper_hmean(self):
        """Table 4: average CPF 1.080 -> 23.15 MFLOPS."""
        assert cpf_to_mflops(1.080) == pytest.approx(23.15, abs=0.01)

    def test_harmonic_mean(self):
        assert harmonic_mean_mflops([1.0, 3.0]) == pytest.approx(
            25.0 / 2.0
        )

    def test_cycles_seconds_round_trip(self):
        assert seconds_to_cycles(cycles_to_seconds(1e6)) == \
            pytest.approx(1e6)

    def test_vector_iteration_normalization(self):
        # 545.28 cycles for 128 source iterations.
        assert cycles_per_vector_iteration(545.28, 128) == \
            pytest.approx(545.28)

    def test_percent_of_bound(self):
        assert percent_of_bound(4.20, 4.26) == pytest.approx(
            98.6, abs=0.1
        )


class TestValidation:
    def test_zero_flops_rejected(self):
        with pytest.raises(ModelError):
            cpl_to_cpf(1.0, 0)

    def test_negative_cpf_rejected(self):
        with pytest.raises(ModelError):
            cpf_to_mflops(-1.0)

    def test_empty_average_rejected(self):
        with pytest.raises(ModelError):
            average_cpf([])

    def test_nonpositive_cpf_in_average_rejected(self):
        with pytest.raises(ModelError):
            average_cpf([1.0, 0.0])

    def test_zero_iterations_rejected(self):
        with pytest.raises(ModelError):
            cycles_per_vector_iteration(100.0, 0)

    def test_zero_measured_rejected(self):
        with pytest.raises(ModelError):
            percent_of_bound(1.0, 0.0)
