"""Cache-study experiment tests."""

from repro.experiments import run_cache_study


class TestCacheStudy:
    def test_shape(self):
        result = run_cache_study()
        rows = {r["kernel"]: r for r in result.data["rows"]}
        # Scalar-heavy kernels benefit...
        assert rows[2]["change_percent"] < -3.0
        assert rows[6]["change_percent"] < -3.0
        # ...vector-dominated kernels are essentially flat.
        for kernel in (1, 7, 9, 10, 12):
            assert abs(rows[kernel]["change_percent"]) < 2.0

    def test_hit_rates_sane(self):
        result = run_cache_study()
        for row in result.data["rows"]:
            assert 0.0 <= row["hit_rate"] <= 1.0
            if row["accesses"] > 20:
                # Loop-resident scalars hit after first touch.
                assert row["hit_rate"] > 0.8
