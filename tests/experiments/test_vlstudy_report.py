"""Vector-length study and report generator tests."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    generate_report,
    n_half_from_curve,
    run_vector_length_study,
)
from repro.experiments.report import write_report


class TestNHalf:
    def test_linear_overhead_model(self):
        """cost = 100 + n -> CPF(n) = 1 + 100/n -> n_1/2 at ~100/CPFinf."""
        points = [(n, 1.0 + 100.0 / n) for n in (10, 50, 100, 200,
                                                 10_000)]
        n_half = n_half_from_curve(points)
        # target = 2 * cpf_inf ~ 2.02 -> n ~ 98
        assert n_half == pytest.approx(100.0, rel=0.05)

    def test_already_fast_at_first_sample(self):
        points = [(64, 1.0), (128, 0.9)]
        assert n_half_from_curve(points) == 64.0

    def test_non_monotone_curve_still_interpolates(self):
        points = [(8, 10.0), (16, 12.0), (32, 1.2), (64, 1.0)]
        n_half = n_half_from_curve(points)
        assert 16 <= n_half <= 32

    def test_too_few_points_rejected(self):
        with pytest.raises(ExperimentError):
            n_half_from_curve([(8, 1.0)])


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_vector_length_study()

    def test_cpf_monotone_decreasing(self, result):
        for name, curve in result.data["curves"].items():
            cpfs = [cpf for _, cpf in curve["points"]]
            assert cpfs == sorted(cpfs, reverse=True), name

    def test_n_half_in_plausible_band(self, result):
        for curve in result.data["curves"].values():
            assert 4 <= curve["n_half"] <= 128

    def test_short_vectors_expensive(self, result):
        for curve in result.data["curves"].values():
            points = dict(curve["points"])
            assert points[8] > 3.0 * points[1000]


class TestReport:
    def test_subset_report(self, tmp_path):
        path = write_report(
            str(tmp_path / "r.md"), ["figure1", "walkthrough"]
        )
        text = open(path).read()
        assert text.startswith("# MACS reproduction report")
        assert "Figure 1" in text
        assert "LFK1 walkthrough" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            generate_report(["bogus"])

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "cli.md")
        assert main(["report", "--out", out, "figure1"]) == 0
        assert "Figure 1" in open(out).read()
