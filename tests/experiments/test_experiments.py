"""Experiment-harness tests: every paper artifact regenerates and its
headline numbers land in the right place."""

import pytest

from repro import paperdata
from repro.experiments import (
    EXPERIMENTS,
    run_ablation_bubbles,
    run_ablation_pairs,
    run_ablation_refresh,
    run_ablation_reuse,
    run_ablation_scalar_splits,
    run_contention,
    run_figure1,
    run_figure2,
    run_figure3,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_walkthrough,
)
from repro.experiments.formatting import ExperimentResult, TextTable


class TestFormatting:
    def test_table_renders_aligned(self):
        table = TextTable(["a", "long-header"])
        table.add_row(1, 2.5)
        table.add_row("x", "y")
        text = table.render()
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_row_arity_checked(self):
        from repro.errors import ExperimentError

        table = TextTable(["a", "b"])
        with pytest.raises(ExperimentError):
            table.add_row(1)

    def test_result_render(self):
        result = ExperimentResult("Table 9", "title", "body",
                                  notes=["n1"])
        text = result.render()
        assert "Table 9" in text and "n1" in text


class TestTable1:
    def test_calibration_matches(self):
        result = run_table1()
        assert result.data["max_z_error"] <= 0.05
        assert result.data["max_b_error"] <= 1.0


class TestTable2:
    def test_ma_counts_match_specs(self):
        result = run_table2()
        assert result.data["mismatches"] == []

    def test_compiler_deltas_present(self):
        body = run_table2().body
        # LFK1's reloaded ZX stream shows as l'=3.
        assert "3" in body


class TestTable3:
    def test_macs_never_below_mac(self):
        result = run_table3()
        for analysis in result.data["analyses"]:
            assert analysis.macs.cpl >= analysis.mac.cpl - 1e-9

    def test_dominant_markers_rendered(self):
        assert "*" in run_table3().body


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4()

    def test_hmeans_close_to_paper(self, result):
        for level, paper_value in paperdata.PAPER_HMEAN_MFLOPS.items():
            assert result.data["hmeans"][level] == pytest.approx(
                paper_value, rel=0.10
            )

    def test_averages_ordered(self, result):
        averages = result.data["averages"]
        assert averages["ma"] <= averages["mac"] <= averages["macs"] \
            <= averages["actual"]


class TestTable5:
    def test_eq18_holds(self):
        result = run_table5()
        for analysis in result.data["analyses"]:
            ax = analysis.ax
            assert analysis.t_p_cpl >= ax.overlap_lower_bound() - 1e-9


class TestFigures:
    def test_figure1_static(self):
        assert "t_MA" in run_figure1().body

    def test_figure2_paper_numbers(self):
        result = run_figure2()
        assert result.data["unchained_cycles"] == \
            paperdata.PAPER_FIG2_UNCHAINED
        assert result.data["first_chime_cycles"] == \
            paperdata.PAPER_FIG2_CHAINED_WITH_BUBBLES
        assert 128.0 <= result.data["steady_chime_cycles"] <= 134.0

    def test_figure3_degradation_band(self):
        result = run_figure3()
        for row in result.data["series"]:
            assert row["multi"] > row["single"]
            assert 5.0 < row["degradation_percent"] < 60.0


class TestContention:
    def test_rules_of_thumb(self):
        result = run_contention()
        rows = result.data["rows"]
        idle = [r for r in rows if r["mix"] == "idle"]
        assert all(r["degradation_percent"] == pytest.approx(0.0)
                   for r in idle)
        lockstep = [r for r in rows if r["mix"] == "same-executable"]
        assert all(3.0 < r["degradation_percent"] < 15.0
                   for r in lockstep)


class TestWalkthrough:
    def test_paper_numbers(self):
        result = run_walkthrough()
        assert sorted(result.data["chime_cycles"]) == sorted(
            paperdata.PAPER_LFK1_CHIMES
        )
        assert result.data["total"] == paperdata.PAPER_LFK1_TOTAL
        assert result.data["with_refresh"] == pytest.approx(
            paperdata.PAPER_LFK1_WITH_REFRESH
        )
        assert result.data["t_macs_cpl"] == pytest.approx(
            paperdata.PAPER_LFK1_T_MACS_CPL, abs=0.001
        )


class TestAblations:
    def test_bubbles_reduce_bound(self):
        for row in run_ablation_bubbles().data["rows"]:
            assert row.ablated < row.baseline

    def test_refresh_reduces_measured(self):
        for row in run_ablation_refresh().data["rows"]:
            assert row.ablated <= row.baseline

    def test_reuse_collapses_compiler_gap(self):
        rows = {r.kernel: r for r in run_ablation_reuse().data["rows"]}
        # LFK 1, 7, 12: the shifted-reload kernels improve.
        for kernel in (1, 7, 12):
            assert rows[kernel].ablated < rows[kernel].baseline
        # LFK 9 had no reloads: unchanged.
        assert rows[9].ablated == pytest.approx(rows[9].baseline)

    def test_pair_rule_relaxation_never_hurts(self):
        for row in run_ablation_pairs().data["rows"]:
            assert row.ablated <= row.baseline + 1e-9

    def test_scalar_split_relaxation_helps_lfk8(self):
        rows = {
            r.kernel: r
            for r in run_ablation_scalar_splits().data["rows"]
        }
        assert rows[8].ablated < rows[8].baseline


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5",
            "figure1", "figure2", "figure3", "walkthrough",
            "contention",
        }
        assert expected <= set(EXPERIMENTS)

    def test_every_experiment_renders(self):
        # figure1 and walkthrough are cheap; the rest are covered above.
        for name in ("figure1", "walkthrough"):
            text = EXPERIMENTS[name]().render()
            assert text.startswith("==")
