"""SVG figure rendering tests."""

import xml.dom.minidom

import pytest

from repro.errors import ExperimentError
from repro.experiments.svg import (
    SvgCanvas,
    figure2_svg,
    figure3_svg,
    write_figure2_svg,
    write_figure3_svg,
)


class TestCanvas:
    def test_render_is_wellformed_xml(self):
        canvas = SvgCanvas(100, 50)
        canvas.rect(1, 2, 10, 20, "#fff", title="a <b> & c")
        canvas.line(0, 0, 100, 50)
        canvas.text(5, 5, "label & <escape>")
        xml.dom.minidom.parseString(canvas.render())

    def test_negative_rect_rejected(self):
        canvas = SvgCanvas(10, 10)
        with pytest.raises(ExperimentError):
            canvas.rect(0, 0, -1, 5, "#000")


class TestFigure3Svg:
    SERIES = [
        {"kernel": 1, "ma": 0.6, "mac": 0.8, "macs": 0.84,
         "single": 0.85, "multi": 1.26},
        {"kernel": 12, "ma": 2.0, "mac": 3.0, "macs": 3.13,
         "single": 3.16, "multi": 4.73},
    ]

    def test_renders(self):
        document = figure3_svg(self.SERIES)
        xml.dom.minidom.parseString(document)
        assert document.count("<rect") >= 2 * 5  # bars per kernel
        assert "LFK12" in document

    def test_empty_series_rejected(self):
        with pytest.raises(ExperimentError):
            figure3_svg([])

    def test_file_writer(self, tmp_path):
        path = write_figure3_svg(str(tmp_path / "f3.svg"))
        xml.dom.minidom.parse(path)


class TestFigure2Svg:
    def test_file_writer(self, tmp_path):
        path = write_figure2_svg(str(tmp_path / "f2.svg"), chimes=2)
        document = open(path).read()
        xml.dom.minidom.parseString(document)
        assert document.count("ld.l") == 4  # 2 row labels + 2 tooltips
        assert "load/store" in document

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            figure2_svg([])


class TestCliSvg:
    def test_svg_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "fig2.svg")
        assert main(["svg", "figure2", "--out", out]) == 0
        xml.dom.minidom.parse(out)

    def test_unknown_figure(self, capsys):
        from repro.cli import main

        assert main(["svg", "figure9"]) == 2
