"""Timing database tests (paper Table 1)."""

import pytest

from repro.errors import IsaError
from repro.isa import TimingTable, VectorTiming, default_timing_table
from repro.paperdata import PAPER_TABLE1


class TestTable1Values:
    @pytest.mark.parametrize("key", sorted(PAPER_TABLE1))
    def test_matches_paper(self, key):
        x, y, z, b = PAPER_TABLE1[key]
        timing = default_timing_table().lookup(key)
        assert (timing.x, timing.y, timing.z, timing.b) == (x, y, z, b)

    def test_isolated_load_cycles(self):
        load = default_timing_table().lookup("load")
        assert load.isolated_cycles(128) == 140.0  # 2 + 10 + 128

    def test_isolated_divide_cycles(self):
        div = default_timing_table().lookup("div")
        assert div.isolated_cycles(128) == 2 + 72 + 4 * 128

    def test_streaming_cycles_includes_bubble(self):
        store = default_timing_table().lookup("store")
        assert store.streaming_cycles(128) == 132.0  # 128 + B=4


class TestTableOperations:
    def test_lookup_unknown_key(self):
        with pytest.raises(IsaError):
            default_timing_table().lookup("sqrt")

    def test_contains(self):
        table = default_timing_table()
        assert "load" in table and "sqrt" not in table

    def test_with_override(self):
        table = default_timing_table()
        slower = table.with_override(
            "load", VectorTiming("load", x=2, y=20, z=1.0, b=2)
        )
        assert slower.lookup("load").y == 20
        assert table.lookup("load").y == 10  # original untouched

    def test_override_key_mismatch(self):
        with pytest.raises(IsaError):
            default_timing_table().with_override(
                "load", VectorTiming("store", 2, 10, 1.0, 2)
            )

    def test_without_bubbles(self):
        table = default_timing_table().without_bubbles()
        assert all(
            table.lookup(key).b == 0 for key in table.keys()
        )

    def test_equality(self):
        assert default_timing_table() == default_timing_table()
        assert default_timing_table() != (
            default_timing_table().without_bubbles()
        )

    def test_invalid_vl(self):
        with pytest.raises(IsaError):
            default_timing_table().lookup("add").isolated_cycles(0)
