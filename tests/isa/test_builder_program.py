"""AsmBuilder and Program container tests."""

import pytest

from repro.errors import AsmSyntaxError, IsaError
from repro.isa import AsmBuilder, Immediate, areg, sreg, vreg


def build_strip_loop():
    b = AsmBuilder("strip")
    data = b.data("arr", 2048)
    b.mov(Immediate(300), sreg(0))
    b.mov(Immediate(0), areg(5))
    with b.strip_loop(sreg(0), areg(5)):
        b.vload(b.mem(data, areg(5)), vreg(0))
        b.vadd(vreg(0), vreg(1), vreg(2))
        b.vstore(vreg(2), b.mem(data, areg(5), 1024))
    return b.build()


class TestBuilder:
    def test_strip_loop_structure(self):
        program = build_strip_loop()
        start, end = program.innermost_loop()
        body = program.loop_slice((start, end))
        assert body[0].name == "mov.w"  # VL setup
        assert body[-1].name == "jbrs.t"
        assert sum(1 for i in body if i.is_vector) == 3

    def test_duplicate_data_symbol_rejected(self):
        b = AsmBuilder()
        b.data("x", 8)
        with pytest.raises(IsaError):
            b.data("x", 8)

    def test_pending_label_must_attach(self):
        b = AsmBuilder()
        b.label("Lx")
        with pytest.raises(IsaError):
            b.build()

    def test_two_pending_labels_rejected(self):
        b = AsmBuilder()
        b.label("L1")
        with pytest.raises(IsaError):
            b.label("L2")

    def test_fresh_labels_unique(self):
        b = AsmBuilder()
        labels = {b.fresh_label() for _ in range(10)}
        assert len(labels) == 10

    def test_mem_displacement_in_words(self):
        b = AsmBuilder()
        symbol = b.data("y", 16)
        mem = b.mem(symbol, areg(0), displacement_words=3)
        assert mem.displacement == 24
        assert mem.symbol == "y"


class TestProgram:
    def test_loop_detection(self):
        program = build_strip_loop()
        loops = program.loop_bodies()
        assert len(loops) == 1

    def test_innermost_loop_smallest(self):
        b = AsmBuilder()
        outer = b.fresh_label()
        inner = b.fresh_label()
        b.label(outer)
        b.mov(Immediate(1), sreg(0))
        b.label(inner)
        b.sub_imm(1, sreg(1))
        b.compare_lt(Immediate(0), sreg(1))
        b.branch_true(inner)
        b.compare_lt(Immediate(0), sreg(0))
        b.branch_true(outer)
        program = b.build()
        start, end = program.innermost_loop()
        assert program[start].label == inner

    def test_no_loop_raises(self):
        b = AsmBuilder()
        b.mov(Immediate(0), sreg(0))
        with pytest.raises(IsaError):
            b.build().innermost_loop()

    def test_label_pc_unknown(self):
        with pytest.raises(IsaError):
            build_strip_loop().label_pc("NOPE")

    def test_replaced_keeps_layout(self):
        program = build_strip_loop()
        fp_only = program.replaced(
            [i for i in program if not i.is_vector_memory],
            name="xproc",
        )
        assert fp_only.name == "xproc"
        assert fp_only.layout.lookup("arr").size_bytes == 2048 * 8
        assert len(fp_only) < len(program)

    def test_memory_references_collected(self):
        program = build_strip_loop()
        refs = program.memory_references()
        assert len(refs) == 2
