"""Assembly text parsing and printing tests (incl. round trips)."""

import pytest

from repro.errors import AsmSyntaxError
from repro.isa import (
    Immediate,
    LabelRef,
    MemRef,
    areg,
    format_program,
    parse_instruction,
    parse_operand,
    parse_program,
    sreg,
    vreg,
    VL,
)

LFK1_LISTING = """
.data   space1, 6000
L7:     mov     s0,VL
        ld.l    space1+40120(a5),v0 ; ZX
        mul.d   v0,s1,v1
        ld.l    space1+40128(a5),v2
        mul.d   v2,s3,v0
        add.d   v1,v0,v3
        ld.l    space1+32032(a5),v1 ; Y
        mul.d   v1,v3,v2
        add.d   v2,s7,v0
        st.l    v0,space1+24024(a5) ; X
        add.w   #1024,a5
        sub.w   #128,s0
        lt.w    #0,s0
        jbrs.t  L7
"""


class TestOperandParsing:
    def test_register(self):
        assert parse_operand("v3") == vreg(3)
        assert parse_operand("VL") == VL

    def test_immediate(self):
        assert parse_operand("#1024") == Immediate(1024)
        assert parse_operand("#-8") == Immediate(-8)

    def test_memref_with_symbol(self):
        op = parse_operand("space1+40120(a5)")
        assert op == MemRef(areg(5), 40120, "space1", 1)

    def test_memref_plain(self):
        assert parse_operand("(a0)") == MemRef(areg(0))

    def test_memref_negative_displacement(self):
        op = parse_operand("-16(a2)")
        assert op.displacement == -16

    def test_memref_with_stride(self):
        op = parse_operand("x+0(a5)[25]")
        assert op.stride_words == 25

    def test_memref_negative_stride(self):
        assert parse_operand("w+0(a4)[-1]").stride_words == -1

    def test_label(self):
        assert parse_operand("L7") == LabelRef("L7")

    @pytest.mark.parametrize("text", ["#x", "space1+(a5", "12x4", ""])
    def test_bad_operands(self, text):
        with pytest.raises(AsmSyntaxError):
            parse_operand(text)


class TestInstructionParsing:
    def test_basic(self):
        instr = parse_instruction("add.d v0,v1,v2")
        assert instr.name == "add.d"
        assert instr.operands == (vreg(0), vreg(1), vreg(2))

    def test_unknown_opcode_reported(self):
        with pytest.raises(AsmSyntaxError):
            parse_instruction("bogus v0")

    def test_suffix_parsed(self):
        assert parse_instruction("jbrs.t L7").suffix == "t"


class TestProgramParsing:
    def test_lfk1_listing(self):
        program = parse_program(LFK1_LISTING, name="lfk1")
        assert len(program) == 14
        assert len(program.vector_instructions()) == 9
        assert program.label_pc("L7") == 0
        assert program.layout.lookup("space1").size_bytes == 6000 * 8

    def test_comments_preserved(self):
        program = parse_program(LFK1_LISTING)
        assert program[1].comment == "ZX"

    def test_label_on_own_line(self):
        program = parse_program("Lx:\n        mov s0,VL\n")
        assert program.label_pc("Lx") == 0

    def test_undefined_branch_target_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_program("        jbrs.t NOWHERE\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_program("L1: mov s0,VL\nL1: mov s0,VL\n")

    def test_dangling_label_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_program("        mov s0,VL\nLx:\n")


class TestRoundTrip:
    def test_lfk1_round_trip(self):
        program = parse_program(LFK1_LISTING, name="lfk1")
        reparsed = parse_program(format_program(program), name="lfk1")
        assert [str(i) for i in reparsed] == [str(i) for i in program]
        assert (
            reparsed.layout.lookup("space1").offset_bytes
            == program.layout.lookup("space1").offset_bytes
        )

    def test_strided_round_trip(self):
        source = "        ld.l    px+96(a6)[25],v0\n"
        program = parse_program(source)
        again = parse_program(format_program(program))
        assert again[0].memory_operand.stride_words == 25
