"""Register model tests."""

import pytest

from repro.errors import RegisterError
from repro.isa import (
    Register,
    RegisterClass,
    VECTOR_PAIRS,
    VL,
    VM,
    VS,
    areg,
    sreg,
    vector_pair_of,
    vreg,
)


class TestConstruction:
    def test_address_register_name(self):
        assert areg(5).name == "a5"

    def test_scalar_register_name(self):
        assert sreg(0).name == "s0"

    def test_vector_register_name(self):
        assert vreg(7).name == "v7"

    def test_special_register_names(self):
        assert VL.name == "VL"
        assert VS.name == "VS"
        assert VM.name == "VM"

    @pytest.mark.parametrize("index", [-1, 8, 100])
    def test_out_of_range_index_rejected(self, index):
        with pytest.raises(RegisterError):
            vreg(index)

    def test_special_register_rejects_index(self):
        with pytest.raises(RegisterError):
            Register(RegisterClass.VECTOR_LENGTH, 3)


class TestClassification:
    def test_vector_flag(self):
        assert vreg(0).is_vector
        assert not sreg(0).is_vector

    def test_scalar_flag(self):
        assert sreg(3).is_scalar
        assert not areg(3).is_scalar

    def test_address_flag(self):
        assert areg(1).is_address
        assert not VL.is_address


class TestPairs:
    def test_pair_structure(self):
        assert VECTOR_PAIRS == (
            (vreg(0), vreg(4)),
            (vreg(1), vreg(5)),
            (vreg(2), vreg(6)),
            (vreg(3), vreg(7)),
        )

    @pytest.mark.parametrize("index,pair", [(0, 0), (4, 0), (1, 1),
                                            (5, 1), (3, 3), (7, 3)])
    def test_pair_index(self, index, pair):
        assert vreg(index).pair_index == pair

    def test_pair_of(self):
        assert vector_pair_of(vreg(6)) == (vreg(2), vreg(6))

    def test_pair_index_requires_vector(self):
        with pytest.raises(RegisterError):
            _ = sreg(0).pair_index


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a5", areg(5)),
            ("s0", sreg(0)),
            ("v7", vreg(7)),
            ("VL", VL),
            ("vl", VL),
            ("VS", VS),
        ],
    )
    def test_parse_valid(self, text, expected):
        assert Register.parse(text) == expected

    @pytest.mark.parametrize("text", ["x3", "a9", "v", "", "a-1", "q0"])
    def test_parse_invalid(self, text):
        with pytest.raises(RegisterError):
            Register.parse(text)

    def test_parse_round_trips_name(self):
        for reg in (areg(2), sreg(6), vreg(3), VL):
            assert Register.parse(reg.name) == reg


class TestEquality:
    def test_registers_hashable_and_equal(self):
        assert vreg(3) == vreg(3)
        assert len({vreg(3), vreg(3), vreg(4)}) == 2

    def test_ordering(self):
        assert sorted([vreg(3), vreg(1)]) == [vreg(1), vreg(3)]
