"""Instruction construction and classification tests."""

import pytest

from repro.errors import OperandError, UnknownOpcodeError
from repro.isa import (
    Immediate,
    Instruction,
    LabelRef,
    MemRef,
    OpClass,
    Pipe,
    areg,
    opcode_spec,
    sreg,
    vreg,
    VL,
)


def vload(dst=0):
    return Instruction("ld", (MemRef(areg(5)), vreg(dst)), suffix="l")


def vstore(src=0):
    return Instruction("st", (vreg(src), MemRef(areg(5))), suffix="l")


def vadd():
    return Instruction("add", (vreg(0), vreg(1), vreg(2)), suffix="d")


class TestValidation:
    def test_unknown_opcode(self):
        with pytest.raises(UnknownOpcodeError):
            Instruction("frobnicate", ())

    def test_bad_suffix(self):
        with pytest.raises(OperandError):
            Instruction("add", (vreg(0), vreg(1), vreg(2)), suffix="zz")

    def test_operand_count_low(self):
        with pytest.raises(OperandError):
            Instruction("add", (vreg(0),))

    def test_operand_count_high(self):
        with pytest.raises(OperandError):
            Instruction("mov", (sreg(0), sreg(1), sreg(2)))

    def test_branch_requires_label(self):
        with pytest.raises(OperandError):
            Instruction("jbrs", (sreg(0),), suffix="t")

    def test_ld_memory_operand_position(self):
        with pytest.raises(OperandError):
            Instruction("ld", (vreg(0), MemRef(areg(5))), suffix="l")

    def test_st_memory_operand_position(self):
        with pytest.raises(OperandError):
            Instruction("st", (MemRef(areg(5)), vreg(0)), suffix="l")

    def test_memory_op_needs_exactly_one_memref(self):
        with pytest.raises(OperandError):
            Instruction(
                "ld", (MemRef(areg(5)), MemRef(areg(6))), suffix="l"
            )


class TestClassification:
    def test_vector_load(self):
        instr = vload()
        assert instr.is_vector
        assert instr.is_vector_memory
        assert instr.is_vector_load
        assert not instr.is_vector_fp
        assert instr.pipe is Pipe.LOAD_STORE
        assert instr.timing_key == "load"

    def test_vector_store(self):
        instr = vstore()
        assert instr.is_vector_store
        assert instr.pipe is Pipe.LOAD_STORE
        assert instr.timing_key == "store"

    def test_vector_add_is_fp(self):
        instr = vadd()
        assert instr.is_vector_fp
        assert instr.pipe is Pipe.ADD
        assert instr.flop_count == 1

    def test_vector_mul_pipe(self):
        instr = Instruction("mul", (vreg(0), sreg(1), vreg(1)), suffix="d")
        assert instr.is_vector  # paper rule: touches a v register
        assert instr.pipe is Pipe.MULTIPLY

    def test_scalar_add_not_vector(self):
        instr = Instruction("add", (Immediate(1024), areg(5)), suffix="w")
        assert not instr.is_vector
        assert instr.pipe is None
        assert instr.flop_count == 0

    def test_scalar_load_is_scalar_memory(self):
        instr = Instruction("ld", (MemRef(areg(0)), sreg(1)), suffix="l")
        assert instr.is_scalar_memory
        assert not instr.is_vector_memory

    def test_reduction(self):
        instr = Instruction("sum", (vreg(0), sreg(1)), suffix="d")
        assert instr.is_reduction
        assert instr.is_vector_fp
        assert instr.pipe is Pipe.ADD
        assert instr.timing_key == "sum"

    def test_mov_to_vl_is_scalar(self):
        instr = Instruction("mov", (sreg(0), VL), suffix="w")
        assert not instr.is_vector

    def test_branch_and_compare_flags(self):
        branch = Instruction("jbrs", (LabelRef("L7"),), suffix="t")
        compare = Instruction("lt", (Immediate(0), sreg(0)), suffix="w")
        assert branch.is_branch and not branch.is_compare
        assert compare.is_compare and not compare.is_branch


class TestReadsWrites:
    def test_three_operand_reads_and_writes(self):
        instr = vadd()
        assert instr.reads == frozenset({vreg(0), vreg(1)})
        assert instr.writes == frozenset({vreg(2)})

    def test_two_operand_accumulate_reads_destination(self):
        instr = Instruction("add", (Immediate(8), areg(5)), suffix="w")
        assert areg(5) in instr.reads
        assert instr.writes == frozenset({areg(5)})

    def test_load_reads_base_register(self):
        instr = vload()
        assert areg(5) in instr.reads
        assert instr.vector_writes == frozenset({vreg(0)})

    def test_store_reads_base_and_source(self):
        instr = vstore()
        assert instr.reads == frozenset({vreg(0), areg(5)})
        assert instr.writes == frozenset()

    def test_compare_has_no_destination(self):
        instr = Instruction("lt", (Immediate(0), sreg(0)), suffix="w")
        assert instr.destination is None
        assert sreg(0) in instr.reads


class TestSpec:
    def test_spec_lookup(self):
        assert opcode_spec("add").opclass is OpClass.ADD_GROUP
        assert opcode_spec("div").opclass is OpClass.MUL_GROUP
        assert opcode_spec("sum").opclass is OpClass.REDUCTION

    def test_str_rendering(self):
        assert str(vadd()) == "add.d v0,v1,v2"
        labeled = vadd().with_label("L7").with_comment("x")
        assert str(labeled) == "L7: add.d v0,v1,v2 ; x"
