"""Operand type tests."""

import pytest

from repro.errors import OperandError
from repro.isa import (
    Immediate,
    LabelRef,
    MemRef,
    areg,
    format_operand,
    is_memory_operand,
    sreg,
)


class TestImmediate:
    def test_str(self):
        assert str(Immediate(1024)) == "#1024"
        assert str(Immediate(-8)) == "#-8"

    def test_hashable(self):
        assert len({Immediate(1), Immediate(1), Immediate(2)}) == 2


class TestMemRef:
    def test_plain(self):
        assert str(MemRef(areg(5))) == "(a5)"

    def test_symbol_and_displacement(self):
        mem = MemRef(areg(5), 40120, "space1")
        assert str(mem) == "space1+40120(a5)"

    def test_symbol_without_displacement(self):
        assert str(MemRef(areg(5), 0, "x")) == "x(a5)"

    def test_displacement_only(self):
        assert str(MemRef(areg(2), -16)) == "-16(a2)"

    def test_stride_rendered(self):
        assert str(MemRef(areg(6), 96, "PX", 25)) == "PX+96(a6)[25]"
        assert str(MemRef(areg(4), 0, "W", -1)) == "W(a4)[-1]"

    def test_unit_stride_not_rendered(self):
        assert "[" not in str(MemRef(areg(5), 8, "x", 1))

    def test_base_must_be_address_register(self):
        with pytest.raises(OperandError):
            MemRef(sreg(0))


class TestLabelRef:
    def test_str(self):
        assert str(LabelRef("L7")) == "L7"

    def test_empty_rejected(self):
        with pytest.raises(OperandError):
            LabelRef("")


class TestHelpers:
    def test_is_memory_operand(self):
        assert is_memory_operand(MemRef(areg(0)))
        assert not is_memory_operand(Immediate(3))
        assert not is_memory_operand(areg(0))

    def test_format_operand(self):
        assert format_operand(Immediate(7)) == "#7"
        assert format_operand(areg(3)) == "a3"
