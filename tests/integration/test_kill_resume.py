"""Kill/resume integration: a ``macs-repro sweep`` subprocess is
SIGKILLed mid-run, resumed from its checkpoint, and the merged results
are byte-identical to an uninterrupted run."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
GRID = ["lfk1", "lfk12"]  # x all six option variants = 12 cells


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _sweep(extra, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", "sweep", *GRID,
         "--no-sentinel", "--jobs", "1", *extra],
        cwd=REPO, env=_env(), capture_output=True, text=True,
        timeout=timeout,
    )


class TestKillResume:
    def test_sigkill_mid_sweep_resume_byte_identical(self, tmp_path):
        baseline_out = tmp_path / "baseline.jsonl"
        completed = _sweep(["--out", str(baseline_out)])
        assert completed.returncode == 0, completed.stderr

        ckpt = tmp_path / "sweep.ckpt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", *GRID,
             "--no-sentinel", "--jobs", "1",
             "--checkpoint", str(ckpt)],
            cwd=REPO, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Wait for the first durable checkpoint record, then kill the
        # process hard — mid-sweep, quite possibly mid-append.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if ckpt.exists() and ckpt.stat().st_size > 0:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)
        assert proc.poll() is None, (
            "sweep finished before it could be killed; grow the grid"
        )
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        assert proc.returncode == -signal.SIGKILL
        assert ckpt.stat().st_size > 0

        resumed_out = tmp_path / "resumed.jsonl"
        resumed = _sweep([
            "--checkpoint", str(ckpt),
            "--out", str(resumed_out),
            "--trace", str(tmp_path / "trace.jsonl"),
        ])
        assert resumed.returncode == 0, resumed.stderr
        assert resumed_out.read_bytes() == baseline_out.read_bytes()
        # the resume actually reused checkpointed work
        events = [
            json.loads(line) for line in
            (tmp_path / "trace.jsonl").read_text().splitlines()
        ]
        assert any(e["event"] == "checkpoint_skip" for e in events)

    def test_chaos_cli_sweep_resume_byte_identical(self, tmp_path):
        """The acceptance scenario end to end: torn-write, I/O-error
        and worker-kill faults via ``--chaos``, then a clean resume
        that matches the fault-free payload byte for byte."""
        baseline_out = tmp_path / "baseline.jsonl"
        completed = _sweep(["--out", str(baseline_out)])
        assert completed.returncode == 0, completed.stderr

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "acceptance",
            "faults": [
                {"site": "store.append", "kind": "torn-write",
                 "path": "sweep.ckpt", "after": 2, "count": 1},
                {"site": "trace.write", "kind": "io-error",
                 "after": 4, "count": None},
                {"site": "worker", "kind": "exit", "task": 1,
                 "count": 1},
            ],
        }))
        ckpt = tmp_path / "sweep.ckpt"
        chaotic = subprocess.run(
            [sys.executable, "-m", "repro", "--chaos", str(plan),
             "sweep", *GRID, "--no-sentinel", "--jobs", "2",
             "--checkpoint", str(ckpt),
             "--trace", str(tmp_path / "chaos-trace.jsonl")],
            cwd=REPO, env=_env(), capture_output=True, text=True,
            timeout=600,
        )
        # The chaotic run must not hang or crash the interpreter; any
        # contracted exit code is acceptable (cells may have failed).
        assert chaotic.returncode in (0, 5), chaotic.stderr

        resumed_out = tmp_path / "resumed.jsonl"
        resumed = _sweep([
            "--checkpoint", str(ckpt), "--out", str(resumed_out),
        ])
        assert resumed.returncode == 0, resumed.stderr
        assert resumed_out.read_bytes() == baseline_out.read_bytes()
