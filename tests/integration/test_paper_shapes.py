"""Acceptance tests: the reproduction must match the *shape* of the
paper's evaluation (DESIGN.md §5).

Absolute cycle counts come from our simulator rather than Convex
silicon, so bounds (analytic) are compared tightly and measurements
loosely; the qualitative statements of §4 are asserted exactly.
"""

import pytest

from repro import paperdata
from repro.model import workload_hmean_mflops
from repro.workloads import CASE_STUDY_KERNELS


@pytest.mark.parametrize(
    "spec", CASE_STUDY_KERNELS, ids=lambda s: s.name
)
class TestTable4Bounds:
    """The analytic bounds should match the paper almost exactly."""

    def test_ma_bound_cpf(self, spec, workload_analyses):
        analysis = workload_analyses[spec.name]
        paper = paperdata.PAPER_TABLE4[spec.number]
        assert analysis.to_cpf(analysis.ma.cpl) == pytest.approx(
            paper.t_ma_cpf, abs=0.002
        )

    def test_mac_bound_cpf(self, spec, workload_analyses):
        analysis = workload_analyses[spec.name]
        paper = paperdata.PAPER_TABLE4[spec.number]
        assert analysis.to_cpf(analysis.mac.cpl) == pytest.approx(
            paper.t_mac_cpf, abs=0.002
        )

    def test_macs_bound_cpf(self, spec, workload_analyses):
        """MACS is schedule-specific; ours differs from fc's by a few
        percent at most."""
        analysis = workload_analyses[spec.name]
        paper = paperdata.PAPER_TABLE4[spec.number]
        ours = analysis.to_cpf(analysis.macs.cpl)
        assert ours == pytest.approx(paper.t_macs_cpf, rel=0.07)

    def test_measured_cpf(self, spec, workload_analyses):
        """Measured performance within 20% of the paper's machine."""
        analysis = workload_analyses[spec.name]
        paper = paperdata.PAPER_TABLE4[spec.number]
        ours = analysis.to_cpf(analysis.t_p_cpl)
        assert ours == pytest.approx(paper.t_c_cpf, rel=0.20)


class TestQualitativeStatements:
    def test_macs_explains_90_percent(self, workload_analyses):
        """§4.2: MACS ~>= 90% of t_c for all but LFKs 2, 4, 6.

        Our single-pass measurement carries ~0.05 CPL of pipeline-fill
        startup the paper's repetition harness amortized, so the
        well-behaved threshold is 88% here; the gap kernels stay far
        below it either way.
        """
        for name, analysis in workload_analyses.items():
            number = analysis.spec.number
            explained = analysis.percent_explained("macs")
            if number in paperdata.PAPER_MACS_GAP_KERNELS:
                assert explained < 80.0, (name, explained)
            else:
                assert explained >= 88.0, (name, explained)

    def test_ma_explains_80_only_for_3_9_10(self, workload_analyses):
        for name, analysis in workload_analyses.items():
            number = analysis.spec.number
            explained = analysis.percent_explained("ma")
            if number in paperdata.PAPER_MA_EXPLAINS_80:
                assert explained >= 80.0, (name, explained)
            else:
                assert explained < 85.0, (name, explained)

    def test_compiler_gap_kernels(self, workload_analyses):
        """MA < MAC exactly for LFK 1, 2, 7, 12."""
        for name, analysis in workload_analyses.items():
            number = analysis.spec.number
            gap = analysis.compiler_gap_cpl()
            if number in paperdata.PAPER_COMPILER_GAP:
                assert gap > 0, name
            else:
                assert gap == pytest.approx(0.0), name

    def test_lfk8_macs_far_above_components(self, workload_analyses):
        """§4.4: scalar loads split chimes, so t_MACS >> t_m''."""
        analysis = workload_analyses["lfk8"]
        assert analysis.macs.cpl > 1.2 * analysis.macs_m.cpl
        assert analysis.macs.partition.scalar_memory_splits >= 1

    def test_lfk7_imperfect_fp_overlap(self, workload_analyses):
        """§4.1: (t_f'' - t_f') > 1 in LFK7 (the ninth chime)."""
        analysis = workload_analyses["lfk7"]
        assert analysis.macs_f.cpl - analysis.mac.t_f > 1.0

    def test_poor_overlap_kernels(self, workload_analyses):
        """§4.3: t_p >> MAX(t_a, t_x) for LFKs 2, 4, 6, 8."""
        scores = {
            analysis.spec.number: analysis.ax.overlap_quality(
                analysis.t_p_cpl
            )
            for analysis in workload_analyses.values()
        }
        for number in paperdata.PAPER_POOR_OVERLAP:
            assert scores[number] > 0.15, (number, scores[number])
        # ... and the well-overlapped kernels score low.
        for number in (1, 9, 10, 12):
            assert scores[number] < 0.15, (number, scores[number])

    def test_worst_kernel_is_lfk2(self, workload_analyses):
        """LFK2 has the largest bound/actual gap in Table 4."""
        ratios = {
            analysis.spec.number:
                analysis.t_p_cpl / analysis.macs.cpl
            for analysis in workload_analyses.values()
        }
        assert max(ratios, key=ratios.get) in (2, 6)
        assert ratios[2] > 1.8


class TestHmeanRow:
    def test_hmean_mflops_close_to_paper(self, workload_analyses):
        analyses = list(workload_analyses.values())
        for level, paper_value in paperdata.PAPER_HMEAN_MFLOPS.items():
            ours = workload_hmean_mflops(analyses, level)
            assert ours == pytest.approx(paper_value, rel=0.10), level

    def test_level_ordering_matches_paper(self, workload_analyses):
        """MA fastest bound, actual slowest: 23 > 20 > 18 > 13."""
        analyses = list(workload_analyses.values())
        values = [
            workload_hmean_mflops(analyses, level)
            for level in ("ma", "mac", "macs", "actual")
        ]
        assert values == sorted(values, reverse=True)
