"""Cross-subsystem integration tests."""

import numpy as np
import pytest

from repro.isa import format_program, parse_program
from repro.machine import Simulator
from repro.model import macs_bound
from repro.workloads import (
    CASE_STUDY_KERNELS,
    STENCIL_KERNELS,
    kernel,
    prepare_simulator,
)


@pytest.mark.parametrize(
    "spec", CASE_STUDY_KERNELS + STENCIL_KERNELS,
    ids=lambda s: s.name,
)
class TestAssemblyRoundTrip:
    """Every compiled kernel survives print -> parse with identical
    structure and identical MACS bound (exercises the parser/printer on
    real strided, negative-displacement, labelled code)."""

    def test_round_trip_structure(self, spec, compiled_kernels):
        compiled = compiled_kernels.get(spec.name)
        if compiled is None:
            from repro.workloads import compile_spec

            compiled = compile_spec(spec)
        text = format_program(compiled.program)
        reparsed = parse_program(text, name=spec.name)
        assert [str(i) for i in reparsed] == [
            str(i) for i in compiled.program
        ]

    def test_round_trip_macs_bound(self, spec, compiled_kernels):
        compiled = compiled_kernels.get(spec.name)
        if compiled is None:
            from repro.workloads import compile_spec

            compiled = compile_spec(spec)
        reparsed = parse_program(
            format_program(compiled.program), name=spec.name
        )
        assert macs_bound(reparsed).cpl == pytest.approx(
            macs_bound(compiled.program).cpl
        )


class TestReparsedExecution:
    def test_reparsed_program_runs_identically(self, compiled_kernels):
        """Cycle-exact: the parsed listing is the same machine code."""
        spec = kernel("lfk1")
        compiled = compiled_kernels["lfk1"]
        original = prepare_simulator(spec, compiled).run()
        reparsed_program = parse_program(
            format_program(compiled.program), name="lfk1"
        )
        reparsed = prepare_simulator(
            spec, compiled, program=reparsed_program
        ).run()
        assert reparsed.cycles == original.cycles
        assert reparsed.flops == original.flops


class TestDeterminism:
    def test_compilation_deterministic(self):
        from repro.workloads import compile_spec

        first = compile_spec(kernel("lfk8"))
        second = compile_spec(kernel("lfk8"))
        assert format_program(first.program) == format_program(
            second.program
        )

    def test_simulation_deterministic(self, compiled_kernels):
        spec = kernel("lfk2")
        compiled = compiled_kernels["lfk2"]
        a = prepare_simulator(spec, compiled).run()
        b = prepare_simulator(spec, compiled).run()
        assert a.cycles == b.cycles
