"""Durable artifact store: framing, atomic writes, recovery."""

import json
import os

import pytest

from repro.errors import StoreError
from repro.resilience.store import (
    DurableLog,
    atomic_write_json,
    atomic_write_text,
    frame_record,
    parse_record,
    verify_log,
)


class TestFraming:
    def test_roundtrip(self):
        payload = {"key": "lfk1:default", "metrics": {"cycles": 123.0}}
        line = frame_record(payload)
        decoded, verified = parse_record(line)
        assert decoded == payload
        assert verified

    def test_framed_line_is_one_json_object(self):
        obj = json.loads(frame_record({"a": 1}))
        assert set(obj) == {"crc", "record"}

    def test_crc_mismatch_detected(self):
        line = frame_record({"a": 1}).replace('"a": 1', '"a": 2')
        with pytest.raises(ValueError, match="CRC mismatch"):
            parse_record(line)

    def test_legacy_unframed_line_accepted_unverified(self):
        decoded, verified = parse_record('{"key": "old"}')
        assert decoded == {"key": "old"}
        assert not verified

    def test_payload_with_crc_like_keys_not_misparsed(self):
        # A user payload with exactly {crc, record} keys would collide
        # with the envelope; framing wraps it, so the roundtrip holds.
        payload = {"crc": "feedface", "record": 7}
        line = frame_record(payload)
        decoded, verified = parse_record(line)
        assert decoded == payload and verified


class TestAtomicWrite:
    def test_replaces_contents(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_no_temp_droppings(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(str(path), {"z": 1, "a": 2})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]
        assert json.loads(path.read_text()) == {"a": 2, "z": 1}

    def test_json_output_is_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "bench.json"
        atomic_write_json(str(path), {"b": 1, "a": 2}, indent=None)
        assert path.read_text() == '{"a": 2, "b": 1}\n'


class TestDurableLog:
    def test_append_and_recover(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = DurableLog(path)
        for i in range(3):
            log.append({"key": f"k{i}", "i": i})
        records, report = DurableLog(path).recover()
        assert [r["key"] for r in records] == ["k0", "k1", "k2"]
        assert report.clean and report.records == 3

    def test_unchecksummed_log_still_recovers(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        log = DurableLog(path, fsync=False, checksum=False)
        log.append({"event": "x"})
        records, report = DurableLog(path).recover()
        assert records == [{"event": "x"}]
        assert report.unverified == 1

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = DurableLog(str(path))
        log.append({"key": "good"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"crc": "0000")  # torn, no newline')
        records, report = DurableLog(str(path)).recover()
        assert [r["key"] for r in records] == ["good"]
        assert report.truncated_bytes > 0
        assert report.quarantined == 0
        # the file was repaired: a re-scan is clean
        _, again = DurableLog(str(path)).recover()
        assert again.clean

    def test_undecodable_final_line_with_newline_is_torn_tail(
        self, tmp_path
    ):
        path = tmp_path / "log.jsonl"
        log = DurableLog(str(path))
        log.append({"key": "good"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{truncated json\n")
        records, report = DurableLog(str(path)).recover()
        assert [r["key"] for r in records] == ["good"]
        assert report.truncated_bytes > 0 and report.quarantined == 0

    def test_corrupt_interior_record_quarantined(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = DurableLog(str(path))
        log.append({"key": "a"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage line\n")
        log.append({"key": "b"})
        records, report = DurableLog(str(path)).recover()
        assert [r["key"] for r in records] == ["a", "b"]
        assert report.quarantined == 1
        sidecar = tmp_path / "log.jsonl.quarantine"
        assert sidecar.exists()
        entry = json.loads(sidecar.read_text().splitlines()[0])
        assert entry["raw"] == "garbage line"
        assert entry["reason"]
        # repaired in place: survivors only, re-scan clean, no dupes
        _, again = DurableLog(str(path)).recover()
        assert again.clean and again.records == 2
        assert len(sidecar.read_text().splitlines()) == 1

    def test_crc_flip_quarantined(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = DurableLog(str(path))
        log.append({"key": "a", "n": 1})
        log.append({"key": "b", "n": 2})
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"n": 1', '"n": 9')  # bit rot
        path.write_text("\n".join(lines) + "\n")
        records, report = DurableLog(str(path)).recover()
        assert [r["key"] for r in records] == ["b"]
        assert report.quarantined == 1

    def test_semantic_validation_quarantines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = DurableLog(str(path))
        log.append({"key": "good"})
        log.append({"nokey": True})
        log.append({"key": "also-good"})

        def validate(payload):
            return None if "key" in payload else "missing key"

        records, report = DurableLog(str(path)).recover(
            validate=validate
        )
        assert [r["key"] for r in records] == ["good", "also-good"]
        assert report.quarantined == 1

    def test_missing_file_is_empty_and_clean(self, tmp_path):
        records, report = DurableLog(
            str(tmp_path / "nope.jsonl")
        ).recover()
        assert records == [] and report.clean

    def test_repair_false_is_read_only(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('junk\n{"key": "ok"}\n')
        before = path.read_bytes()
        report = verify_log(str(path))
        assert not report.clean
        assert path.read_bytes() == before
        assert not (tmp_path / "log.jsonl.quarantine").exists()

    def test_report_summary_mentions_damage(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("junk\n" + frame_record({"key": "ok"}) + "\n")
        _, report = DurableLog(str(path)).recover()
        assert "recovered" in report.summary()
        assert "1 quarantined" in report.summary()

    def test_quarantine_failure_raises_store_error(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("junk\n" + frame_record({"key": "ok"}) + "\n")
        # a directory where the sidecar must go forces the OSError path
        (tmp_path / "log.jsonl.quarantine").mkdir()
        with pytest.raises(StoreError, match="quarantine"):
            DurableLog(str(path)).recover()
