"""Watchdog budgets: cycle/step ceilings and deadlines (with chaos
clock skew standing in for the passage of real time)."""

import pytest

from repro.errors import BudgetExceededError
from repro.resilience import faults, watchdog
from repro.resilience.faults import FaultPlan, FaultSpec, chaos
from repro.resilience.watchdog import Deadline


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


class TestCeilings:
    def test_cycles_within_budget(self):
        watchdog.check_cycles(99.0, 100.0, "kern")

    def test_cycles_over_budget(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            watchdog.check_cycles(150.0, 100.0, "kern")
        exc = excinfo.value
        assert exc.budget == "cycles"
        assert exc.spent == 150.0 and exc.limit == 100.0
        assert "kern" in str(exc)

    def test_cycles_no_limit(self):
        watchdog.check_cycles(1e12, None, "kern")

    def test_instructions_over_budget(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            watchdog.check_instructions(100, 100, "kern")
        assert excinfo.value.budget == "instructions"
        assert "runaway" in str(excinfo.value)


class TestDeadline:
    def test_none_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() is None
        deadline.check("sweep")  # no raise

    def test_negative_rejected(self):
        with pytest.raises(BudgetExceededError):
            Deadline(-1.0)

    def test_expiry_via_clock_skew(self):
        # the chaos clock moves time forward without sleeping
        deadline = Deadline(10.0)
        assert not deadline.expired()
        skew = FaultPlan(faults=(
            FaultSpec(site="clock", kind="skew", value=60.0),
        ))
        with chaos(skew):
            assert deadline.expired()
            with pytest.raises(BudgetExceededError) as excinfo:
                deadline.check("sweep")
        assert excinfo.value.budget == "wall-clock"
        assert excinfo.value.limit == 10.0
        assert not deadline.expired()  # skew gone, time restored

    def test_elapsed_monotone(self):
        deadline = Deadline(100.0)
        first = deadline.elapsed()
        second = deadline.elapsed()
        assert second >= first >= 0.0
