"""RetryPolicy: bounded backoff, deterministic jitter."""

import pytest

from repro.errors import ExperimentError
from repro.resilience.retry import RetryPolicy


class TestPolicy:
    def test_allows_within_budget(self):
        policy = RetryPolicy(retries=2)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)
        assert policy.max_attempts == 3

    def test_zero_retries(self):
        policy = RetryPolicy.from_retries(0)
        assert not policy.allows(1)
        assert policy.max_attempts == 1

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(retries=8, base_delay_s=0.05,
                             max_delay_s=0.4, multiplier=2.0,
                             jitter=0.0)
        delays = [policy.backoff_s(n) for n in range(1, 7)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter=0.5)
        f1 = policy.jitter_fraction("lfk1:default", 2)
        f2 = policy.jitter_fraction("lfk1:default", 2)
        assert f1 == f2
        assert 0.5 <= f1 <= 1.0

    def test_jitter_decorrelates_keys(self):
        policy = RetryPolicy(jitter=0.5)
        fractions = {
            policy.jitter_fraction(f"task{i}", 1) for i in range(16)
        }
        assert len(fractions) > 1

    def test_immediate_has_no_delay(self):
        policy = RetryPolicy.immediate(retries=3)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(3) == 0.0
        assert policy.allows(3) and not policy.allows(4)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(retries=-1)
        with pytest.raises(ExperimentError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ExperimentError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ExperimentError):
            RetryPolicy(jitter=1.5)
