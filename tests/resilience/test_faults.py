"""Chaos harness: plan parsing, deterministic matching, fault points."""

import json

import pytest

from repro.errors import ExperimentError
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec, chaos
from repro.resilience.store import DurableLog, atomic_write_text


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


class TestPlanParsing:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "faults": [
                {"site": "store.append", "kind": "io-error"},
                {"site": "worker", "kind": "exit", "task": 0},
            ]
        }))
        plan = FaultPlan.load(str(path))
        assert len(plan.faults) == 2
        assert plan.name == "plan.json"

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{nope")
        with pytest.raises(ExperimentError, match="not valid JSON"):
            FaultPlan.load(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot read"):
            FaultPlan.load(str(tmp_path / "nope.json"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault kind"):
            FaultSpec(site="store.append", kind="explode")

    def test_unknown_field_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault field"):
            FaultSpec.from_dict({"site": "clock", "kind": "skew",
                                 "bogus": 1})

    def test_worker_fault_needs_task(self):
        with pytest.raises(ExperimentError, match="task"):
            FaultSpec(site="worker", kind="exit")

    def test_worker_fault_wrong_kind_rejected(self):
        with pytest.raises(ExperimentError, match="worker faults"):
            FaultSpec(site="worker", kind="io-error", task=0)

    def test_worker_faults_mapping(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", kind="raise", task=1, count=2),
            FaultSpec(site="worker", kind="hang", task=3, count=None),
            FaultSpec(site="clock", kind="skew", value=5.0),
        ))
        assert plan.worker_faults() == {1: ("raise", 2),
                                        3: ("hang", 99)}


class TestMatching:
    def test_after_and_count_window(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="s", kind="io-error", after=2, count=2),
        ))
        with chaos(plan):
            hits = [faults.check("s") is not None for _ in range(6)]
        assert hits == [False, False, True, True, False, False]

    def test_count_none_fires_forever(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="s", kind="io-error", count=None),
        ))
        with chaos(plan):
            assert all(faults.check("s") for _ in range(5))

    def test_path_substring_filter(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="s", kind="io-error", path="ckpt"),
        ))
        with chaos(plan):
            assert faults.check("s", path="/tmp/trace.jsonl") is None
            assert faults.check("s", path="/tmp/sweep.ckpt") is not None

    def test_deterministic_across_runs(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="s", kind="io-error", after=1, count=1),
        ))

        def run():
            with chaos(plan):
                return [faults.check("s") is not None
                        for _ in range(4)]

        assert run() == run()

    def test_fired_log(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="s", kind="io-error"),
        ))
        with chaos(plan):
            faults.check("s", path="p")
            log = faults.fired()
        assert log == [{"site": "s", "kind": "io-error", "path": "p",
                        "hit": 1}]

    def test_disarmed_is_none(self):
        assert faults.check("anything") is None
        assert faults.clock_skew() == 0.0

    def test_clock_skew_sums(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="clock", kind="skew", value=30.0),
            FaultSpec(site="clock", kind="skew", value=12.0),
        ))
        with chaos(plan):
            assert faults.clock_skew() == 42.0


class TestFaultPoints:
    def test_store_append_io_error(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        plan = FaultPlan(faults=(
            FaultSpec(site="store.append", kind="io-error"),
        ))
        log = DurableLog(path)
        with chaos(plan):
            with pytest.raises(OSError, match="injected I/O error"):
                log.append({"key": "x"})

    def test_store_append_torn_write_leaves_recoverable_log(
        self, tmp_path
    ):
        path = str(tmp_path / "log.jsonl")
        log = DurableLog(path)
        log.append({"key": "good"})
        plan = FaultPlan(faults=(
            FaultSpec(site="store.append", kind="torn-write"),
        ))
        with chaos(plan):
            with pytest.raises(OSError, match="torn write"):
                log.append({"key": "lost"})
        records, report = DurableLog(path).recover()
        assert [r["key"] for r in records] == ["good"]
        assert report.truncated_bytes > 0

    def test_atomic_write_io_error_preserves_old_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        plan = FaultPlan(faults=(
            FaultSpec(site="store.atomic_write", kind="io-error"),
        ))
        with chaos(plan):
            with pytest.raises(OSError):
                atomic_write_text(str(path), "new")
        assert path.read_text() == "old"

    def test_atomic_write_torn_write_preserves_old_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        plan = FaultPlan(faults=(
            FaultSpec(site="store.atomic_write", kind="torn-write"),
        ))
        with chaos(plan):
            with pytest.raises(OSError):
                atomic_write_text(str(path), "new contents")
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestForkDisarm:
    def test_forked_child_inherits_no_armed_plan(self):
        """Forked workers must start with chaos disarmed: a plan armed
        in a serving parent would otherwise fire inside every worker
        and every injected fault would double."""
        import os

        plan = FaultPlan(faults=(
            FaultSpec(site="service.accept", kind="io-error"),
        ))
        with chaos(plan):
            pid = os.fork()
            if pid == 0:
                os._exit(
                    0 if faults.check("service.accept") is None
                    else 1
                )
            _, wait_status = os.waitpid(pid, 0)
            assert os.WIFEXITED(wait_status)
            assert os.WEXITSTATUS(wait_status) == 0
            # The parent's plan is still armed after the fork.
            assert faults.check("service.accept") is not None
