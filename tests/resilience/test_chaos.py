"""Chaos equivalence suite: sweeps survive injected faults and, after
resume, publish payloads byte-identical to a fault-free run."""

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec, chaos
from repro.resilience.store import verify_log
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.spec import OPTION_VARIANTS


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


GRID = SweepSpec.build(
    ("lfk1", "lfk12"),
    variants={
        "default": OPTION_VARIANTS["default"],
        "reuse": OPTION_VARIANTS["reuse"],
    },
)


@pytest.fixture(scope="module")
def baseline():
    """The fault-free ``--jobs 1`` payload every chaos run must match."""
    return run_sweep(GRID, jobs=1).results_jsonl()


class TestCheckpointFaults:
    def test_torn_checkpoint_write_then_resume(self, tmp_path,
                                               baseline):
        ckpt = tmp_path / "sweep.ckpt"
        plan = FaultPlan(faults=(
            FaultSpec(site="store.append", kind="torn-write",
                      path="sweep.ckpt", after=1, count=1),
        ))
        with chaos(plan):
            first = run_sweep(GRID, jobs=1, checkpoint=str(ckpt))
        # The sweep itself survived (checkpointing degraded, results
        # did not), and the torn record is on disk.
        assert first.results_jsonl() == baseline
        degraded = [e for e in first.telemetry.events
                    if e["event"] == "checkpoint_degraded"]
        assert len(degraded) == 1
        assert not verify_log(str(ckpt)).clean
        # Resume without chaos: recovery truncates the torn tail,
        # re-runs what was lost, and the payload is byte-identical.
        second = run_sweep(GRID, jobs=1, checkpoint=str(ckpt))
        assert second.results_jsonl() == baseline
        assert verify_log(str(ckpt)).clean

    def test_checkpoint_io_error_degrades_not_dies(self, tmp_path,
                                                   baseline):
        ckpt = tmp_path / "sweep.ckpt"
        plan = FaultPlan(faults=(
            FaultSpec(site="store.append", kind="io-error",
                      path="sweep.ckpt", count=None),
        ))
        with chaos(plan):
            result = run_sweep(GRID, jobs=1, checkpoint=str(ckpt))
        assert result.results_jsonl() == baseline
        assert any(e["event"] == "checkpoint_degraded"
                   for e in result.telemetry.events)
        # With every append failing, nothing was checkpointed; a
        # clean resume simply runs the whole grid again, identically.
        second = run_sweep(GRID, jobs=1, checkpoint=str(ckpt))
        assert second.results_jsonl() == baseline


class TestTraceFaults:
    def test_trace_io_error_degrades_not_dies(self, tmp_path,
                                              baseline):
        trace = tmp_path / "trace.jsonl"
        plan = FaultPlan(faults=(
            FaultSpec(site="trace.write", kind="io-error",
                      count=None, after=2),
        ))
        with chaos(plan):
            result = run_sweep(GRID, jobs=1, trace=str(trace))
        assert result.results_jsonl() == baseline
        assert result.telemetry.degraded is not None
        assert any(e["event"] == "trace_degraded"
                   for e in result.telemetry.events)


class TestWorkerFaults:
    def test_worker_kill_from_plan_then_identical_results(
        self, baseline
    ):
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", kind="exit", task=0, count=1),
        ))
        result = run_sweep(GRID, jobs=2, fault_plan=plan)
        assert all(o.ok for o in result.outcomes)
        assert result.results_jsonl() == baseline
        assert any(e["event"] == "worker_crash"
                   for e in result.telemetry.events)

    def test_worker_kill_with_checkpoint_resume(self, tmp_path,
                                                baseline):
        ckpt = tmp_path / "sweep.ckpt"
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", kind="raise", task=1,
                      count=99),  # exhausts every retry
        ))
        first = run_sweep(GRID, jobs=2, fault_plan=plan,
                          checkpoint=str(ckpt),
                          retry=None, retries=1)
        failed = [o for o in first.outcomes if o.status == "failed"]
        assert len(failed) == 1
        # Resume fault-free: the failed cell is retried (failed
        # entries are not resumable) and the payload converges.
        second = run_sweep(GRID, jobs=1, checkpoint=str(ckpt))
        assert second.results_jsonl() == baseline
        assert verify_log(str(ckpt)).clean


class TestDeadline:
    def test_expired_deadline_fails_typed_not_hangs(self):
        # after=1: the deadline's own start-time read stays real,
        # the next clock read jumps an hour into the future
        skew = FaultPlan(faults=(
            FaultSpec(site="clock", kind="skew", value=3600.0,
                      after=1),
        ))
        with chaos(skew):
            result = run_sweep(GRID, jobs=1, deadline_s=60.0)
        assert all(o.status == "failed" for o in result.outcomes)
        assert all("BudgetExceededError" in o.error
                   for o in result.outcomes)
        budget_events = [e for e in result.telemetry.events
                         if e["event"] == "budget_exceeded"]
        assert len(budget_events) == len(result.outcomes)

    def test_expired_deadline_parallel_drains_pool(self):
        # after=1: the deadline's own start-time read stays real,
        # the next clock read jumps an hour into the future
        skew = FaultPlan(faults=(
            FaultSpec(site="clock", kind="skew", value=3600.0,
                      after=1),
        ))
        with chaos(skew):
            result = run_sweep(GRID, jobs=2, deadline_s=60.0)
        assert all(o.status == "failed" for o in result.outcomes)

    def test_generous_deadline_changes_nothing(self, baseline):
        result = run_sweep(GRID, jobs=1, deadline_s=3600.0)
        assert result.results_jsonl() == baseline
