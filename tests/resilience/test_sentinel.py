"""Fastpath divergence sentinel: cross-check, injected divergence,
and the scheduler's auto-fallback + quarantine path."""

import pytest

from repro.resilience import faults, sentinel
from repro.resilience.faults import FaultPlan, FaultSpec, chaos
from repro.sweep import SweepSpec, read_trace, run_sweep
from repro.sweep.spec import OPTION_VARIANTS, SweepTask


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.deactivate()


GRID = SweepSpec.build(
    ("lfk1", "lfk12"), variants={"default": OPTION_VARIANTS["default"]}
)

SKEW_PLAN = FaultPlan(faults=(
    FaultSpec(site="sentinel.fast_cycles", kind="skew", value=8.0),
), name="skew-sentinel")


class TestCrossCheck:
    def test_healthy_fastpath_passes(self):
        task = sentinel.pick_cell(GRID.expand())
        verdict = sentinel.cross_check(task)
        assert verdict.checked and not verdict.diverged
        assert verdict.fast_cycles == verdict.exact_cycles > 0

    def test_pick_cell_skips_ineligible(self):
        from repro.machine import DEFAULT_CONFIG

        nofp = SweepTask(
            "lfk1", OPTION_VARIANTS["default"],
            config=DEFAULT_CONFIG.without_fastpath(),
        )
        eligible = SweepTask("lfk12", OPTION_VARIANTS["default"])
        assert sentinel.pick_cell([nofp, eligible]) is eligible
        assert sentinel.pick_cell([nofp]) is None

    def test_injected_timing_skew_detected(self):
        task = sentinel.pick_cell(GRID.expand())
        with chaos(SKEW_PLAN):
            verdict = sentinel.cross_check(task)
        assert verdict.checked and verdict.diverged
        assert verdict.mismatches == ("cycles",)
        assert verdict.fast_cycles == verdict.exact_cycles + 8.0
        assert "mismatch" in verdict.reason

    def test_broken_cell_reports_unchecked(self):
        # lfk4 cannot compile under tight-sregs: not the sentinel's
        # problem, so checked=False rather than a crash.
        task = SweepTask("lfk4", OPTION_VARIANTS["tight-sregs"])
        verdict = sentinel.cross_check(task)
        assert not verdict.checked and not verdict.diverged
        assert verdict.reason

    def test_engage_skew_detected_through_real_engine(self):
        # Skew the fast path's clocks *inside* a real engagement: the
        # sentinel sees the simulator itself misreport cycles.
        task = sentinel.pick_cell(GRID.expand())
        plan = FaultPlan(faults=(
            FaultSpec(site="fastpath.engage", kind="skew",
                      value=64.0, count=1),
        ))
        with chaos(plan):
            verdict = sentinel.cross_check(task)
        assert verdict.diverged
        assert "cycles" in verdict.mismatches


class TestSchedulerFallback:
    def test_divergence_triggers_exact_fallback_and_quarantine(
        self, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        with chaos(SKEW_PLAN):
            result = run_sweep(GRID, jobs=1, sentinel=True,
                               trace=str(trace))
        assert all(o.ok for o in result.outcomes)
        events = read_trace(str(trace))
        kinds = [e["event"] for e in events]
        assert "sentinel_check" in kinds
        assert "fastpath_divergence" in kinds
        quarantined = next(
            e for e in events if e["event"] == "config_quarantined"
        )
        assert len(quarantined["tasks"]) == len(result.outcomes)
        assert "exact" in quarantined["fallback"]

    def test_fallback_results_match_no_fastpath_run(self, tmp_path):
        # Degraded execution must equal an honest no-fastpath sweep.
        with chaos(SKEW_PLAN):
            degraded = run_sweep(GRID, jobs=1, sentinel=True)
        exact_grid = SweepSpec.build(
            ("lfk1", "lfk12"),
            variants={"default": OPTION_VARIANTS["default"]},
        )
        baseline = run_sweep(exact_grid, jobs=1)
        assert degraded.results_jsonl() == baseline.results_jsonl()

    def test_healthy_sweep_emits_clean_sentinel_check(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(GRID, jobs=1, sentinel=True,
                           trace=str(trace))
        assert all(o.ok for o in result.outcomes)
        events = read_trace(str(trace))
        check = next(
            e for e in events if e["event"] == "sentinel_check"
        )
        assert check["checked"] and not check["diverged"]
        assert not any(
            e["event"] == "fastpath_divergence" for e in events
        )
