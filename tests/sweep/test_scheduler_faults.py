"""Fault injection: the scheduler must survive workers that raise,
exit, or hang, retry up to the bound, and record everything in the
trace."""

import pytest

from repro.sweep import SweepTask, run_sweep
from repro.sweep.telemetry import read_trace

TASKS = [SweepTask("lfk12"), SweepTask("lfk1")]


def events_of(trace_path, kind):
    return [e for e in read_trace(str(trace_path)) if e["event"] == kind]


class TestSequentialFaults:
    def test_raise_retried_then_succeeds(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(
            TASKS, jobs=1, retries=2, trace=str(trace),
            inject_faults={0: ("raise", 2)},
        )
        assert all(o.ok for o in result.outcomes)
        assert result.outcomes[0].attempts == 3
        assert len(events_of(trace, "task_retry")) == 2
        errors = events_of(trace, "task_error")
        assert all("injected fault" in e["error"] for e in errors)

    def test_retries_exhausted_records_failure(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(
            TASKS, jobs=1, retries=1, trace=str(trace),
            inject_faults={0: ("raise", 99)},
        )
        assert result.outcomes[0].status == "failed"
        assert result.outcomes[0].attempts == 2
        assert result.outcomes[1].ok  # the healthy task still ran
        failures = events_of(trace, "task_failed")
        assert len(failures) == 1
        assert failures[0]["key"] == TASKS[0].key
        assert "RuntimeError" in failures[0]["error"]

    def test_zero_retries_fails_immediately(self):
        result = run_sweep(
            TASKS, jobs=1, retries=0,
            inject_faults={0: ("raise", 1)},
        )
        assert result.outcomes[0].status == "failed"
        assert result.outcomes[0].attempts == 1


class TestParallelFaults:
    def test_worker_raise_is_retried(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(
            TASKS, jobs=2, retries=2, trace=str(trace),
            inject_faults={0: ("raise", 1)},
        )
        assert all(o.ok for o in result.outcomes)
        assert len(events_of(trace, "task_retry")) == 1

    def test_worker_exit_breaks_pool_and_recovers(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(
            TASKS, jobs=2, retries=2, trace=str(trace),
            inject_faults={0: ("exit", 1)},
        )
        assert all(o.ok for o in result.outcomes), [
            (o.label, o.status, o.error) for o in result.outcomes
        ]
        crashes = events_of(trace, "worker_crash")
        assert crashes, "pool break must be recorded in the trace"
        assert events_of(trace, "sweep_end")[0]["failed"] == 0

    def test_worker_hang_times_out_and_recovers(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(
            TASKS, jobs=2, retries=1, timeout=1.5, trace=str(trace),
            inject_faults={0: ("hang", 1)},
        )
        assert all(o.ok for o in result.outcomes), [
            (o.label, o.status, o.error) for o in result.outcomes
        ]
        timeouts = events_of(trace, "task_timeout")
        assert len(timeouts) == 1
        assert timeouts[0]["key"] == TASKS[0].key

    def test_hang_retries_exhausted_marks_failed(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(
            [TASKS[0]], jobs=2, retries=0, timeout=1.0,
            trace=str(trace),
            inject_faults={0: ("hang", 99)},
        )
        assert result.outcomes[0].status == "failed"
        assert "timed out" in result.outcomes[0].error
        failures = events_of(trace, "task_failed")
        assert len(failures) == 1

    @pytest.mark.parametrize("fault", ["raise", "exit"])
    def test_failures_beyond_budget_are_recorded(self, tmp_path, fault):
        trace = tmp_path / f"trace-{fault}.jsonl"
        result = run_sweep(
            TASKS, jobs=2, retries=1, trace=str(trace),
            inject_faults={0: (fault, 99)},
        )
        assert result.outcomes[0].status == "failed"
        assert result.outcomes[1].ok
        assert events_of(trace, "task_failed")
