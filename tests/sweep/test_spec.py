"""Sweep grid expansion, keys, and dedup."""

import pytest

from repro.errors import ExperimentError
from repro.machine import DEFAULT_CONFIG
from repro.sweep import OPTION_VARIANTS, SweepSpec, SweepTask


class TestSweepTask:
    def test_key_is_stable_and_content_based(self):
        a = SweepTask("lfk1")
        b = SweepTask("lfk1", tags=(("variant", "whatever"),))
        assert a.key == b.key  # tags are labels, not content

    def test_key_distinguishes_options(self):
        a = SweepTask("lfk1", OPTION_VARIANTS["default"])
        b = SweepTask("lfk1", OPTION_VARIANTS["reuse"])
        assert a.key != b.key

    def test_key_distinguishes_config_size_and_mode(self):
        base = SweepTask("lfk1")
        assert base.key != SweepTask(
            "lfk1", config=DEFAULT_CONFIG.without_fastpath()
        ).key
        assert base.key != SweepTask("lfk1", n=64).key
        assert base.key != SweepTask("lfk1", mode="bound").key

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExperimentError):
            SweepTask("lfk1", mode="bogus")

    def test_label_and_tag(self):
        task = SweepTask(
            "lfk1", n=32,
            tags=(("variant", "reuse"), ("config", "base")),
        )
        assert task.label == "lfk1/n=32/reuse/base"
        assert task.tag("variant") == "reuse"
        assert task.tag("missing", "x") == "x"


class TestSweepSpec:
    def test_expansion_order_is_workload_major(self):
        spec = SweepSpec.build(
            ["lfk1", "lfk12"],
            variants={
                "default": OPTION_VARIANTS["default"],
                "reuse": OPTION_VARIANTS["reuse"],
            },
        )
        tasks = spec.expand()
        assert [t.workload for t in tasks] == [
            "lfk1", "lfk1", "lfk12", "lfk12"
        ]
        assert [t.tag("variant") for t in tasks[:2]] == [
            "default", "reuse"
        ]

    def test_duplicate_cells_dropped(self):
        spec = SweepSpec.build(
            ["lfk1"],
            variants={
                "a": OPTION_VARIANTS["default"],
                "b": OPTION_VARIANTS["default"],  # same content
            },
        )
        assert spec.grid_size == 2
        tasks = spec.expand()
        assert len(tasks) == 1
        assert tasks[0].tag("variant") == "a"

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec.build([]).expand()
        with pytest.raises(ExperimentError):
            SweepSpec(workloads=("lfk1",), variants=()).expand()
