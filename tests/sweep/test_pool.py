"""WorkerPool tests: persistence, crash/hang supervision, retries."""

import os
import time

import pytest

from repro.errors import ExperimentError
from repro.resilience.retry import RetryPolicy
from repro.sweep.pool import WorkerPool

FAST_RETRY = RetryPolicy(retries=2, base_delay_s=0.01,
                         max_delay_s=0.05)


def double(x, attempt=1):
    return x * 2


def report_attempt(attempt=1):
    return attempt


def die_until(threshold, attempt=1):
    """Kill the worker process on attempts <= threshold."""
    if attempt <= threshold:
        os._exit(13)
    return attempt


def hang_once(attempt=1):
    if attempt == 1:
        time.sleep(60.0)
    return attempt


def deterministic_failure(attempt=1):
    raise ValueError(f"always fails (attempt {attempt})")


class TestHappyPath:
    def test_runs_jobs_and_reuses_the_pool(self):
        with WorkerPool(workers=1, retry=FAST_RETRY) as pool:
            assert pool.run(double, 21) == 42
            assert pool.run(double, 4) == 8
            assert pool.jobs_submitted == 2
            assert pool.restarts == 0

    def test_jobs_receive_the_attempt_number(self):
        with WorkerPool(workers=1, retry=FAST_RETRY) as pool:
            assert pool.run(report_attempt) == 1

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ExperimentError):
            WorkerPool(workers=0)


class TestSupervision:
    def test_crashed_worker_is_rebuilt_and_job_retried(self):
        with WorkerPool(workers=1, retry=FAST_RETRY) as pool:
            assert pool.run(die_until, 1, key="crash") == 2
            assert pool.restarts == 1
            assert pool.jobs_submitted == 2
            # The rebuilt pool keeps serving.
            assert pool.run(double, 3) == 6

    def test_retry_budget_exhaustion_raises(self):
        with WorkerPool(workers=1, retry=FAST_RETRY) as pool:
            with pytest.raises(ExperimentError, match="died"):
                pool.run(die_until, 99, key="doomed")
            assert pool.restarts == FAST_RETRY.max_attempts

    def test_hung_worker_is_killed_and_job_retried(self):
        with WorkerPool(workers=1, retry=FAST_RETRY) as pool:
            assert pool.run(hang_once, key="hang",
                            timeout=1.0) == 2
            assert pool.restarts == 1

    def test_deterministic_exceptions_propagate_without_retry(self):
        with WorkerPool(workers=1, retry=FAST_RETRY) as pool:
            with pytest.raises(ValueError, match="always fails"):
                pool.run(deterministic_failure)
            assert pool.jobs_submitted == 1
            assert pool.restarts == 0


class TestLifecycle:
    def test_shutdown_rejects_new_jobs(self):
        pool = WorkerPool(workers=1, retry=FAST_RETRY)
        assert pool.run(double, 1) == 2
        pool.shutdown()
        with pytest.raises(ExperimentError, match="shut down"):
            pool.run(double, 1)

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(workers=1, retry=FAST_RETRY)
        pool.shutdown()
        pool.shutdown()
