"""Scheduler behaviour: determinism, checkpointing, telemetry."""

import json

import pytest

from repro.errors import ExperimentError
from repro.sweep import (
    OPTION_VARIANTS,
    SweepSpec,
    SweepTask,
    grid_outcomes,
    run_sweep,
    summarize_trace,
)
from repro.sweep.telemetry import read_trace
from repro.workloads import run_kernel, workload

SMALL_GRID = SweepSpec.build(
    ["lfk1", "lfk12"],
    variants={
        "default": OPTION_VARIANTS["default"],
        "reuse": OPTION_VARIANTS["reuse"],
    },
)


class TestSequential:
    def test_matches_direct_run_kernel(self):
        result = run_sweep(SMALL_GRID, jobs=1)
        assert all(o.ok for o in result.outcomes)
        for outcome in result.outcomes:
            run = run_kernel(
                workload(outcome.workload),
                dict(SMALL_GRID.variants)[outcome.tags["variant"]],
            )
            assert outcome.metrics["cycles"] == run.result.cycles
            assert outcome.metrics["cpl"] == run.cpl()
            assert outcome.metrics["flops"] == run.result.flops

    def test_outcomes_in_grid_order(self):
        result = run_sweep(SMALL_GRID, jobs=1)
        assert [o.index for o in result.outcomes] == [0, 1, 2, 3]
        labels = [o.label for o in result.outcomes]
        assert labels == [
            "lfk1/default/base", "lfk1/reuse/base",
            "lfk12/default/base", "lfk12/reuse/base",
        ]

    def test_run_cache_hits_are_tagged_in_trace(self):
        run_sweep(SMALL_GRID, jobs=1)  # warm the process-wide cache
        result = run_sweep(SMALL_GRID, jobs=1)
        assert all(o.status == "cached" for o in result.outcomes)
        # ... but the deterministic payload normalizes them to "ok"
        for line in result.results_jsonl().splitlines():
            assert json.loads(line)["status"] == "ok"

    def test_bound_mode_tasks(self):
        from repro.model import macs_bound
        from repro.workloads import compile_spec

        result = run_sweep([SweepTask("lfk1", mode="bound")], jobs=1)
        expected = macs_bound(
            compile_spec(workload("lfk1")).program
        ).cpl
        assert result.outcomes[0].metrics == {"cpl": expected}

    def test_compile_error_is_deterministic_error_outcome(self):
        task = SweepTask("lfk4", OPTION_VARIANTS["tight-sregs"])
        result = run_sweep([task], jobs=1, retries=5)
        outcome = result.outcomes[0]
        assert outcome.status == "error"
        assert outcome.attempts == 1  # deterministic: never retried
        assert "CompileError" in outcome.error

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep(SMALL_GRID, jobs=0)


class TestTrace:
    def test_trace_jsonl_roundtrip_and_summary(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(SMALL_GRID, jobs=1, trace=str(trace))
        events = read_trace(str(trace))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_end"
        assert kinds.count("task_end") == 4
        ends = [e for e in events if e["event"] == "task_end"]
        for event in ends:
            assert set(event) >= {
                "t", "key", "task", "status", "attempt", "wall_s",
                "pid", "stages", "counters",
            }
        # the summary table is computed from the trace itself
        summary = summarize_trace(str(trace))
        assert "tasks ok" in summary
        assert summary == result.summary()

    def test_simulator_counters_aggregated(self, tmp_path):
        from repro.workloads import clear_caches

        clear_caches()  # cached cells skip the simulator entirely
        trace = tmp_path / "trace.jsonl"
        run_sweep(SMALL_GRID, jobs=1, trace=str(trace))
        summary = summarize_trace(str(trace))
        assert "total flops" in summary
        assert "stage simulate" in summary


class TestCheckpoint:
    def test_resume_skips_completed_cells(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        first = run_sweep(SMALL_GRID, jobs=1, checkpoint=str(ckpt))
        assert ckpt.exists()
        trace = tmp_path / "trace.jsonl"
        second = run_sweep(
            SMALL_GRID, jobs=1, checkpoint=str(ckpt),
            trace=str(trace),
        )
        events = read_trace(str(trace))
        skips = [e for e in events if e["event"] == "checkpoint_skip"]
        assert len(skips) == 4
        assert not any(e["event"] == "task_end" for e in events)
        assert second.results_jsonl() == first.results_jsonl()

    def test_partial_checkpoint_runs_remaining(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = SMALL_GRID.expand()
        run_sweep(tasks[:2], jobs=1, checkpoint=str(ckpt))
        result = run_sweep(tasks, jobs=1, checkpoint=str(ckpt))
        assert len(result.outcomes) == 4
        assert all(o.ok for o in result.outcomes)

    def test_corrupt_checkpoint_recovers(self, tmp_path):
        # Corruption no longer kills the sweep: the bad record is
        # quarantined, the recovery is reported to the trace, and the
        # sweep runs to completion with the surviving entries.
        ckpt = tmp_path / "ckpt.jsonl"
        # interior corruption (a final bad line would be classified as
        # a torn tail and truncated instead)
        ckpt.write_text('not json\n{"key": "stale-cell"}\n')
        trace = tmp_path / "trace.jsonl"
        result = run_sweep(SMALL_GRID, jobs=1, checkpoint=str(ckpt),
                           trace=str(trace))
        assert all(o.ok for o in result.outcomes)
        events = read_trace(str(trace))
        recovered = [e for e in events
                     if e["event"] == "checkpoint_recovered"]
        assert len(recovered) == 1
        assert recovered[0]["quarantined"] == 1
        assert (tmp_path / "ckpt.jsonl.quarantine").exists()

    def test_torn_checkpoint_tail_truncated(self, tmp_path):
        # A torn final record (SIGKILL mid-append) is silently
        # truncated; the affected cell simply re-runs.
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = SMALL_GRID.expand()
        run_sweep(tasks, jobs=1, checkpoint=str(ckpt))
        whole = ckpt.read_bytes()
        ckpt.write_bytes(whole[:-10])  # tear the last record
        result = run_sweep(tasks, jobs=1, checkpoint=str(ckpt))
        assert all(o.ok for o in result.outcomes)
        # exactly one cell lost its checkpoint entry and re-ran
        assert sum(o.attempts > 0 for o in result.outcomes) == 1


class TestParallel:
    def test_parallel_results_byte_identical(self):
        sequential = run_sweep(SMALL_GRID, jobs=1)
        parallel = run_sweep(SMALL_GRID, jobs=2)
        assert parallel.results_jsonl() == sequential.results_jsonl()
        assert parallel.table() == sequential.table()

    def test_parallel_checkpoint_resume(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        first = run_sweep(SMALL_GRID, jobs=2, checkpoint=str(ckpt))
        second = run_sweep(SMALL_GRID, jobs=2, checkpoint=str(ckpt))
        assert second.results_jsonl() == first.results_jsonl()


class TestGridOutcomes:
    def test_raises_on_failed_cells(self):
        with pytest.raises(ExperimentError, match="sweep cell"):
            grid_outcomes(
                [SweepTask("lfk4", OPTION_VARIANTS["tight-sregs"])]
            )

    def test_returns_grid_order(self):
        outcomes = grid_outcomes(SMALL_GRID.expand())
        assert [o.workload for o in outcomes] == [
            "lfk1", "lfk1", "lfk12", "lfk12"
        ]
