"""Public API surface checks: every exported name resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.machine",
    "repro.lang",
    "repro.compiler",
    "repro.schedule",
    "repro.model",
    "repro.workloads",
    "repro.experiments",
    "repro.analysis",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_sorted_and_unique(package):
    module = importlib.import_module(package)
    names = list(module.__all__)
    assert len(names) == len(set(names)), package


def test_top_level_analyze_kernel():
    import repro

    analysis = repro.analyze_kernel("lfk12", measure=False)
    assert analysis.spec.number == 12


def test_version_string():
    import repro

    major, *_ = repro.__version__.split(".")
    assert int(major) >= 1
