"""Differential gate: the shipped c240.toml IS the hard-coded C-240.

The machine file must be a faithful, byte-identical re-declaration of
the baseline the whole reproduction was calibrated against: identical
resolved config, identical content digest, and identical simulated
cycles/counters on every shipped workload with the fast path both on
and off.
"""

import pytest

from repro.machine.config import DEFAULT_CONFIG
from repro.machines import builtin_machine
from repro.workloads import run_kernel, workload, workload_names


@pytest.fixture(scope="module")
def c240():
    return builtin_machine("c240")


def test_resolved_config_is_the_baseline(c240):
    assert c240.config == DEFAULT_CONFIG


def test_timing_table_is_table1(c240):
    assert c240.config.timings == DEFAULT_CONFIG.timings


def test_content_digest_matches_the_baseline(c240):
    from repro.sweep.spec import digest

    assert c240.digest == digest(DEFAULT_CONFIG)


@pytest.mark.parametrize("fastpath", [True, False],
                         ids=["fastpath", "interpreter"])
@pytest.mark.parametrize("name", workload_names())
def test_runs_byte_identical_to_hardcoded_baseline(
    c240, name, fastpath
):
    baseline_config = (
        DEFAULT_CONFIG if fastpath else DEFAULT_CONFIG.without_fastpath()
    )
    file_config = (
        c240.config if fastpath else c240.config.without_fastpath()
    )
    spec = workload(name)
    baseline = run_kernel(spec, config=baseline_config, verify=True)
    from_file = run_kernel(spec, config=file_config, verify=True)
    assert from_file.result.cycles == baseline.result.cycles
    br, fr = baseline.result, from_file.result
    assert (fr.instructions_executed, fr.vector_instructions,
            fr.flops, fr.mflops) == \
        (br.instructions_executed, br.vector_instructions,
         br.flops, br.mflops)
    assert from_file.cpl() == baseline.cpl()
