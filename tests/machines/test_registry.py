"""The shipped machine family and --machine argument resolution."""

import pytest

from repro.compiler import DEFAULT_OPTIONS
from repro.errors import MachineFileError
from repro.machine.config import DEFAULT_CONFIG
from repro.machines import (
    builtin_machine,
    builtin_names,
    load_machine_file,
    machine,
    machine_names,
    resolve_machines,
    tuned_options,
)

FAMILY = ("c240", "c210", "c3800like", "cray-nochain")


class TestBuiltins:
    def test_family_is_shipped(self):
        assert tuple(builtin_names()) == FAMILY
        assert machine_names() == builtin_names()

    def test_baseline_leads_the_listing(self):
        assert builtin_names()[0] == "c240"

    def test_c240_is_the_default_config(self):
        assert builtin_machine("c240").config == DEFAULT_CONFIG

    def test_builtins_are_memoized(self):
        assert builtin_machine("c210") is builtin_machine("c210")

    def test_builtin_source_is_masked(self):
        assert builtin_machine("c240").source == "<builtin>"

    def test_unknown_name_lists_the_family(self):
        with pytest.raises(MachineFileError, match="c3800like"):
            builtin_machine("c9000")

    def test_family_parameters(self):
        c210 = builtin_machine("c210").config
        assert (c210.cpus, c210.memory_banks) == (1, 16)
        c3800 = builtin_machine("c3800like").config
        assert c3800.memory_banks == 64
        assert c3800.clock_period_ns < DEFAULT_CONFIG.clock_period_ns
        cray = builtin_machine("cray-nochain").config
        assert not cray.chaining_enabled
        assert cray.max_vl == 64
        assert not cray.refresh_enabled

    def test_digests_are_distinct_across_the_family(self):
        digests = {builtin_machine(n).digest for n in builtin_names()}
        assert len(digests) == len(FAMILY)


class TestResolution:
    def test_machine_accepts_paths(self, tmp_path):
        path = tmp_path / "custom.toml"
        path.write_text(
            'schema = 1\nname = "custom"\n[machine]\nmax_vl = 32\n'
        )
        description = machine(str(path))
        assert description.name == "custom"
        assert description.config.max_vl == 32
        assert load_machine_file(str(path)).digest == description.digest

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(MachineFileError, match="cannot read"):
            machine(str(tmp_path / "absent.toml"))

    def test_unsupported_extension_is_typed(self, tmp_path):
        path = tmp_path / "m.yaml"
        path.write_text("schema: 1\n")
        with pytest.raises(MachineFileError, match="extension"):
            machine(str(path))

    def test_resolve_all(self):
        assert [d.name for d in resolve_machines("all")] == list(FAMILY)

    def test_resolve_comma_list(self):
        names = [d.name for d in resolve_machines("c210, cray-nochain")]
        assert names == ["c210", "cray-nochain"]

    def test_resolve_dedups_by_digest(self, tmp_path):
        # a path-loaded twin of c240 collapses onto the built-in
        path = tmp_path / "twin.toml"
        path.write_text('schema = 1\nname = "twin"\n')
        resolved = resolve_machines(f"c240,{path}")
        assert [d.name for d in resolved] == ["c240"]

    def test_resolve_empty_is_typed(self):
        with pytest.raises(MachineFileError, match="empty"):
            resolve_machines(" , ")


class TestTunedOptions:
    def test_clamps_strip_length_to_short_registers(self):
        cray = builtin_machine("cray-nochain").config
        tuned = tuned_options(DEFAULT_OPTIONS, cray)
        assert tuned.vector_length == 64

    def test_fitting_options_pass_through_unchanged(self):
        assert tuned_options(
            DEFAULT_OPTIONS, DEFAULT_CONFIG
        ) is DEFAULT_OPTIONS

    def test_shorter_requested_strip_is_respected(self):
        short = DEFAULT_OPTIONS.replace(vector_length=16)
        assert tuned_options(
            short, builtin_machine("cray-nochain").config
        ) is short
