"""Schema validation: malformed machine files raise typed errors.

The contract under test: *any* malformed input — junk text, wrong
types, unknown keys, partial pipe tables, out-of-range values —
raises :class:`repro.errors.MachineFileError` (which the CLI maps to
the simulation exit code), and never an untyped crash.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineFileError, ReproError
from repro.isa.timing import DEFAULT_TIMINGS
from repro.machine.config import DEFAULT_CONFIG
from repro.machines import build_description, parse_machine_text
from repro.machines.loader import _parse_toml, _toml_subset

MINIMAL = 'schema = 1\nname = "m"\n'


def describe(text: str):
    return parse_machine_text(text, source="<test>")


class TestValidFiles:
    def test_minimal_file_inherits_every_default(self):
        description = describe(MINIMAL)
        assert description.name == "m"
        assert description.title == "m"
        assert description.config == DEFAULT_CONFIG

    def test_sections_override_fields(self):
        description = describe(
            MINIMAL
            + "[machine]\nclock_period_ns = 20.0\nmax_vl = 64\n"
            + "chaining = false\n"
            + "[memory]\nbanks = 64\nrefresh_enabled = false\n"
            + "[scalar]\nload_latency = 2\n"
            + "[chimes]\nregister_pairs = false\n"
        )
        config = description.config
        assert config.clock_period_ns == 20.0
        assert config.max_vl == 64
        assert not config.chaining_enabled
        assert config.memory_banks == 64
        assert not config.refresh_enabled
        assert config.scalar_load_latency == 2
        assert not config.chime_register_pairs
        # untouched fields keep the C-240 values
        assert config.bank_cycle_time == DEFAULT_CONFIG.bank_cycle_time

    def test_full_pipe_table_overrides_timings(self):
        sections = "".join(
            f"[pipes.{key}]\nz = 2.0\n" for key in DEFAULT_TIMINGS
        )
        description = describe(MINIMAL + sections)
        for key in DEFAULT_TIMINGS:
            timing = description.config.timings.lookup(key)
            assert timing.z == 2.0
            # omitted per-pipe keys inherit Table 1
            assert timing.y == DEFAULT_TIMINGS[key].y

    def test_json_machine_file(self):
        data = {"schema": 1, "name": "j",
                "machine": {"max_vl": 32}}
        description = parse_machine_text(
            json.dumps(data), source="<test>", fmt="json"
        )
        assert description.config.max_vl == 32

    def test_doc_and_title_carried(self):
        description = describe(
            'schema = 1\nname = "m"\ntitle = "My Machine"\n'
            'doc = "notes"\n'
        )
        assert description.title == "My Machine"
        assert description.doc == "notes"


class TestTypedRejections:
    @pytest.mark.parametrize("text, fragment", [
        ("", "schema"),
        ('schema = 2\nname = "m"\n', "schema"),
        ("schema = 1\n", "name"),
        ('schema = 1\nname = "bad name!"\n', "letters"),
        (MINIMAL + "[engine]\nfoo = 1\n", "unknown"),
        (MINIMAL + "[machine]\nfoo = 1\n", "unknown key"),
        (MINIMAL + "[machine]\nmax_vl = true\n", "integer"),
        (MINIMAL + '[machine]\nmax_vl = "128"\n', "integer"),
        (MINIMAL + '[memory]\nrefresh_enabled = 1\n', "boolean"),
        (MINIMAL + '[machine]\nclock_period_ns = "fast"\n', "number"),
        (MINIMAL + "[pipes.load]\nz = 1.0\n", "partial"),
        (MINIMAL + "[pipes.warp]\nz = 1.0\n", "unknown pipe"),
        (MINIMAL + "[machine]\nmax_vl = 0\n", "max_vl"),
        (MINIMAL + "[memory]\nbanks = 0\n", "banks"),
        (MINIMAL + "[machine]\ncpus = 0\n", "cpus"),
    ])
    def test_malformed_files_raise_machine_file_error(
        self, text, fragment
    ):
        with pytest.raises(MachineFileError) as excinfo:
            describe(text)
        assert fragment.split()[0] in str(excinfo.value)

    def test_zero_rate_pipe_rejected(self):
        sections = "".join(
            f"[pipes.{key}]\nz = 1.0\n" for key in DEFAULT_TIMINGS
        ).replace("[pipes.div]\nz = 1.0", "[pipes.div]\nz = 0.0")
        with pytest.raises(MachineFileError, match="positive"):
            describe(MINIMAL + sections)

    def test_non_table_input_rejected(self):
        with pytest.raises(MachineFileError, match="table"):
            build_description([1, 2], "<test>")

    def test_json_array_rejected(self):
        with pytest.raises(MachineFileError, match="object"):
            parse_machine_text("[1, 2]", source="<t>", fmt="json")

    def test_unknown_format_rejected(self):
        with pytest.raises(MachineFileError, match="format"):
            parse_machine_text(MINIMAL, source="<t>", fmt="yaml")

    def test_source_path_in_message(self):
        with pytest.raises(MachineFileError, match="<test>"):
            describe("schema = 1\n")


class TestSubsetParser:
    """The 3.10 fallback parser agrees with tomllib and fails typed."""

    def test_agrees_with_tomllib_on_shipped_files(self):
        import glob
        import os

        from repro.machines.registry import DATA_DIR

        paths = sorted(glob.glob(os.path.join(DATA_DIR, "*.toml")))
        assert paths
        for path in paths:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
            assert _toml_subset(text, path) == _parse_toml(text, path)

    @pytest.mark.parametrize("text, fragment", [
        ("[unclosed\n", "section header"),
        ("[]\n", "empty section"),
        ("[a..b]\n", "section path"),
        ("key\n", "key = value"),
        ("key =\n", "key = value"),
        ("a = 1\na = 2\n", "duplicate"),
        ("a = nope\n", "cannot parse"),
        ('[a]\nb = 1\n[a.b]\nc = 2\n', "collides"),
    ])
    def test_malformed_toml_raises_with_line_numbers(
        self, text, fragment
    ):
        with pytest.raises(MachineFileError) as excinfo:
            _toml_subset(text, "<t>")
        assert fragment in str(excinfo.value)

    def test_comments_and_strings_with_hashes(self):
        parsed = _toml_subset(
            '# leading\nt = "a # b"  # trailing\nn = 3 # c\n', "<t>"
        )
        assert parsed == {"t": "a # b", "n": 3}


@given(st.text(max_size=200))
@settings(max_examples=200, deadline=None)
def test_fuzz_toml_text_never_crashes_untyped(text):
    try:
        parse_machine_text(text, source="<fuzz>")
    except MachineFileError:
        pass  # the typed rejection path — always acceptable


@given(
    st.recursive(
        st.one_of(
            st.none(), st.booleans(), st.integers(), st.floats(),
            st.text(max_size=20),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=10), children, max_size=4),
        ),
        max_leaves=12,
    )
)
@settings(max_examples=200, deadline=None)
def test_fuzz_parsed_trees_never_crash_untyped(data):
    try:
        build_description(data, "<fuzz>")
    except MachineFileError:
        pass
    except ReproError as exc:  # pragma: no cover - would be a bug
        raise AssertionError(
            f"untyped taxonomy leak: {type(exc).__name__}: {exc}"
        )
