"""Cache-key scoping: different machines can never share a cache slot.

Machine identity enters every tier as the *content digest* of the
resolved config — sweep-task keys, service request keys, the run
cache, the service L1 ResultCache, and the fleet's shared L2.  These
tests pin the regression the digest exists to prevent: two different
machine descriptions colliding on one cached result.
"""

import itertools

import pytest

from repro.machines import builtin_machine, builtin_names
from repro.service.cache import ResultCache
from repro.service.protocol import canonicalize
from repro.sweep.spec import SweepTask


def pairs():
    return list(itertools.combinations(builtin_names(), 2))


class TestSweepTaskKeys:
    @pytest.mark.parametrize("left, right", pairs())
    def test_distinct_machines_distinct_task_keys(self, left, right):
        task_a = SweepTask(
            workload="lfk1", config=builtin_machine(left).config
        )
        task_b = SweepTask(
            workload="lfk1", config=builtin_machine(right).config
        )
        assert task_a.key != task_b.key

    def test_every_config_field_moves_the_key(self):
        # the full config is digested, so any parameter change — even
        # one the simulator ignores today — scopes the key
        base = builtin_machine("c240").config
        variant = base.replace(cpus=base.cpus + 1)
        assert SweepTask(workload="lfk1", config=base).key \
            != SweepTask(workload="lfk1", config=variant).key


class TestServiceKeys:
    @pytest.mark.parametrize("kind", ["run", "bound", "mac", "ax",
                                      "analyze", "advise", "sweep"])
    @pytest.mark.parametrize("left, right", pairs())
    def test_distinct_machines_distinct_request_keys(
        self, kind, left, right
    ):
        params = {} if kind == "sweep" else {"kernel": "lfk1"}
        key_a = canonicalize(kind, {**params, "machine": left}).key
        key_b = canonicalize(kind, {**params, "machine": right}).key
        assert key_a != key_b

    def test_machine_digest_joins_the_payload(self):
        request = canonicalize(
            "advise", {"kernel": "lfk1", "machine": "c210"}
        )
        assert request.payload["machine"] == "c210"
        assert request.payload["machine_digest"] == \
            builtin_machine("c210").digest


class TestResultCacheScoping:
    def test_l1_cache_never_serves_across_machines(self):
        cache = ResultCache(max_entries=8)
        key_a = canonicalize(
            "run", {"kernel": "lfk1", "machine": "c240"}
        ).key
        key_b = canonicalize(
            "run", {"kernel": "lfk1", "machine": "cray-nochain"}
        ).key
        cache.put(key_a, "run", {"cycles": 1.0})
        assert cache.get(key_b) is None
        assert cache.get(key_a) == {"cycles": 1.0}

    def test_fleet_l2_never_serves_across_machines(self, tmp_path):
        from repro.fleet.store import SharedL2Store

        store = SharedL2Store(str(tmp_path))
        key_a = canonicalize(
            "bound", {"kernel": "lfk3", "machine": "c210"}
        ).key
        key_b = canonicalize(
            "bound", {"kernel": "lfk3", "machine": "c3800like"}
        ).key
        store.put(key_a, "bound", {"cpl": 2.0})
        assert store.get(key_b) is None
        assert store.get(key_a) == {"cpl": 2.0}


class TestRunCacheScoping:
    def test_run_cache_keys_on_the_config(self):
        from repro.workloads import run_kernel

        run_a = run_kernel(
            "lfk3", config=builtin_machine("c240").config
        )
        run_b = run_kernel(
            "lfk3", config=builtin_machine("cray-nochain").config
        )
        # different machines, independently simulated results
        assert run_a is not run_b
        assert run_a.result.cycles != run_b.result.cycles
