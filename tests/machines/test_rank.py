"""The cross-machine ranking experiment."""

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS
from repro.experiments.rank import run_rank


@pytest.fixture(scope="module")
def full_rank():
    return run_rank(machines="all", kernels=("lfk1", "lfk3", "lfk7"))


def test_rank_is_registered():
    assert EXPERIMENTS["rank"] is run_rank


def test_ranks_the_whole_family_on_three_kernels(full_rank):
    data = full_rank.data
    assert len(data["machines"]) >= 4
    assert len(data["kernels"]) == 3
    ranks = [row["rank"] for row in data["ranking"]]
    assert ranks == sorted(ranks) == list(range(1, 5))
    geomeans = [row["geomean_ns_per_iter"] for row in data["ranking"]]
    assert all(g > 0 for g in geomeans)
    assert geomeans == sorted(geomeans)


def test_faster_clock_wins_the_streaming_mix(full_rank):
    names = [row["machine"] for row in full_rank.data["ranking"]]
    # both sub-40ns machines beat both 40ns machines on this mix
    assert set(names[:2]) == {"cray-nochain", "c3800like"}


def test_schedule_ranking_covers_every_variant(full_rank):
    from repro.sweep.spec import OPTION_VARIANTS

    ranking = full_rank.data["schedule_ranking"]
    assert {row["variant"] for row in ranking} == set(OPTION_VARIANTS)
    cpls = [row["cpl"] for row in ranking]
    assert cpls == sorted(cpls)


def test_render_contains_both_tables(full_rank):
    text = full_rank.render()
    assert "machines ranked" in text
    assert "schedules ranked" in text
    assert "bound" in text


def test_empty_kernel_set_is_typed():
    with pytest.raises(ExperimentError, match="kernel"):
        run_rank(kernels=())


def test_cli_gates_machine_flag_to_rank(capsys):
    code = main(["experiment", "table1", "--machine", "all"])
    assert code == 2
    assert "rank" in capsys.readouterr().err


def test_cli_rank_two_kernels(capsys):
    code = main([
        "experiment", "rank",
        "--machine", "c240,c210", "--kernels", "lfk1,lfk3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "c210" in out and "lfk3 ns/it" in out
