"""A/X transformation and measurement tests (§3.6)."""

import pytest

from repro.model import (
    access_only_program,
    execute_only_program,
    measure_ax,
)
from repro.workloads import CASE_STUDY_KERNELS


class TestTransforms:
    def test_access_program_has_no_vector_fp(self, lfk1_compiled):
        access = access_only_program(lfk1_compiled.program)
        assert not any(i.is_vector_fp for i in access)
        # Memory side retained in full.
        originals = sum(
            1 for i in lfk1_compiled.program if i.is_vector_memory
        )
        assert sum(1 for i in access if i.is_vector_memory) == originals

    def test_execute_program_has_no_vector_memory(self, lfk1_compiled):
        execute = execute_only_program(lfk1_compiled.program)
        assert not any(i.is_vector_memory for i in execute)
        originals = sum(
            1 for i in lfk1_compiled.program if i.is_vector_fp
        )
        assert sum(1 for i in execute if i.is_vector_fp) == originals

    def test_scalar_code_untouched(self, lfk1_compiled):
        """Control flow must be preserved (paper footnote 2)."""
        for transform in (access_only_program, execute_only_program):
            transformed = transform(lfk1_compiled.program)
            original_scalars = [
                str(i) for i in lfk1_compiled.program if not i.is_vector
            ]
            kept_scalars = [
                str(i).replace(": ", ":: ", 0)
                for i in transformed if not i.is_vector
            ]
            # Same scalar instructions in the same order (labels may
            # migrate, so compare without labels).
            strip = lambda text: text.split(": ")[-1]
            assert [strip(s) for s in kept_scalars] == [
                strip(s) for s in original_scalars
            ]

    def test_labels_migrate_to_next_instruction(self, compiled_kernels):
        program = compiled_kernels["lfk3"].program
        execute = execute_only_program(program)
        # Every branch target must still resolve.
        for instr in execute:
            if instr.is_branch:
                execute.label_pc(instr.operands[0].name)

    def test_transformed_programs_run(self, compiled_kernels):
        from repro.workloads import kernel

        for name in ("lfk1", "lfk3", "lfk8"):
            measurement = measure_ax(
                kernel(name), compiled_kernels[name]
            )
            assert measurement.t_a_cpl > 0
            assert measurement.t_x_cpl > 0


@pytest.mark.parametrize(
    "spec", CASE_STUDY_KERNELS, ids=lambda s: s.name
)
class TestEquation18:
    def test_bracketing(self, spec, workload_analyses):
        """MAX(t_x, t_a) <= t_p <= ~(t_x + t_a) (paper eq. 18)."""
        analysis = workload_analyses[spec.name]
        ax = analysis.ax
        floor = ax.overlap_lower_bound()
        assert analysis.t_p_cpl >= floor - 1e-9
        # The sum bound holds loosely (scalar overheads are shared
        # between the two measurement codes).
        assert analysis.t_p_cpl <= 1.25 * ax.overlap_upper_bound()


class TestOverlapDiagnostics:
    def test_memory_bound_kernels_have_ta_above_tx(
        self, workload_analyses
    ):
        """For the strongly memory-bound kernels the A-process
        dominates."""
        for name in ("lfk1", "lfk10", "lfk12"):
            ax = workload_analyses[name].ax
            assert ax.t_a_cpl > ax.t_x_cpl

    def test_overlap_quality_in_unit_range_for_good_kernels(
        self, workload_analyses
    ):
        analysis = workload_analyses["lfk1"]
        quality = analysis.ax.overlap_quality(analysis.t_p_cpl)
        assert 0.0 <= quality <= 0.2  # near-perfect overlap

    def test_poor_overlap_kernels_score_higher(self, workload_analyses):
        good = workload_analyses["lfk1"]
        poor = workload_analyses["lfk4"]
        assert poor.ax.overlap_quality(poor.t_p_cpl) > \
            good.ax.overlap_quality(good.t_p_cpl)

    def test_m_bound_explains_access_time(self, workload_analyses):
        """t_m'' explains >= 90% of measured t_a for the well-behaved
        kernels (paper: >= 95% except LFK 2, 4, 6)."""
        for name, analysis in workload_analyses.items():
            if analysis.spec.number in (2, 4, 6):
                continue
            ratio = analysis.macs_m.cpl / analysis.ax.t_a_cpl
            assert ratio >= 0.90, (name, ratio)
