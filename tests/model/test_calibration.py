"""Calibration-loop tests: Table 1 recovered from the simulator."""

import pytest

from repro import paperdata
from repro.errors import ModelError
from repro.model import (
    calibrate_all,
    calibrate_instruction,
    compare_with_table1,
)


@pytest.fixture(scope="module")
def comparisons():
    return compare_with_table1(calibrate_all())


class TestDerivedParameters:
    @pytest.mark.parametrize("key", sorted(paperdata.PAPER_TABLE1))
    def test_z_recovered(self, comparisons, key):
        comparison = next(c for c in comparisons if c.row.key == key)
        assert comparison.z_error <= 0.05

    @pytest.mark.parametrize("key", sorted(paperdata.PAPER_TABLE1))
    def test_b_recovered(self, comparisons, key):
        comparison = next(c for c in comparisons if c.row.key == key)
        assert comparison.b_error <= 1.0

    @pytest.mark.parametrize("key", ["load", "store", "add", "mul"])
    def test_y_recovered_for_common_ops(self, comparisons, key):
        comparison = next(c for c in comparisons if c.row.key == key)
        assert comparison.y_error <= 2.0

    def test_divide_rate(self, comparisons):
        div = next(c for c in comparisons if c.row.key == "div")
        assert div.row.z == pytest.approx(4.0, abs=0.05)

    def test_reduction_rate(self, comparisons):
        total = next(c for c in comparisons if c.row.key == "sum")
        assert total.row.z == pytest.approx(1.35, abs=0.05)

    def test_rounded_rows_match_table1(self, comparisons):
        for comparison in comparisons:
            timing = comparison.row.as_timing()
            reference = comparison.reference
            assert timing.z == pytest.approx(reference.z, abs=0.05)
            assert timing.b == reference.b


class TestCalibrationHarness:
    def test_unknown_instruction_rejected(self):
        with pytest.raises(ModelError):
            calibrate_instruction("sqrt")

    def test_vl_ordering_validated(self):
        with pytest.raises(ModelError):
            calibrate_instruction("add", vl_low=128, vl_high=64)

    def test_deterministic(self):
        first = calibrate_instruction("load")
        second = calibrate_instruction("load")
        assert first == second
