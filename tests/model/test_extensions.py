"""Tests for the paper's proposed extensions: extended MACS (short
vectors / outer overhead), the MACS-D allocation bound, and the
optimization advisor."""

import pytest

from repro.compiler import compile_kernel
from repro.errors import ModelError
from repro.model import (
    advise,
    extended_macs_bound,
    macs_bound,
    macs_d_bound,
)
from repro.model.advisor import AdviceTarget, advise_report
from repro.workloads import CASE_STUDY_KERNELS


class TestExtendedMacs:
    def test_steady_kernels_unmoved(self, workload_analyses):
        """At a single long entry the extension adds only startup."""
        for name in ("lfk1", "lfk7", "lfk10", "lfk12"):
            analysis = workload_analyses[name]
            extended = extended_macs_bound(
                analysis.compiled, analysis.spec.trip_profile
            )
            assert extended.cpl <= analysis.macs.cpl * 1.05

    def test_closes_short_vector_gaps(self, workload_analyses):
        """LFK 2, 4, 6: the extension explains >= 80% of measured."""
        for name in ("lfk2", "lfk4", "lfk6"):
            analysis = workload_analyses[name]
            extended = extended_macs_bound(
                analysis.compiled, analysis.spec.trip_profile
            )
            explained = 100.0 * extended.cpl / analysis.t_p_cpl
            base = 100.0 * analysis.macs.cpl / analysis.t_p_cpl
            assert explained >= 78.0, (name, explained)
            assert explained > base + 10.0, (name, explained, base)

    def test_model_stays_near_or_below_measured(self, workload_analyses):
        """XMACS is a model: within ~2% above measured at worst."""
        for name, analysis in workload_analyses.items():
            extended = extended_macs_bound(
                analysis.compiled, analysis.spec.trip_profile
            )
            assert extended.cpl <= analysis.t_p_cpl * 1.02, name

    def test_penalty_accessor(self, workload_analyses):
        analysis = workload_analyses["lfk6"]
        extended = extended_macs_bound(
            analysis.compiled, analysis.spec.trip_profile
        )
        assert extended.short_vector_penalty_cpl == pytest.approx(
            extended.cpl - extended.steady_cpl
        )
        assert extended.short_vector_penalty_cpl > 1.0

    def test_strip_accounting(self, workload_analyses):
        analysis = workload_analyses["lfk4"]
        extended = extended_macs_bound(
            analysis.compiled, analysis.spec.trip_profile
        )
        # 3 entries x (128 + 72) = 6 strips.
        assert extended.entries == 3
        assert extended.strip_count == 6

    def test_empty_profile_rejected(self, lfk1_compiled):
        with pytest.raises(ModelError):
            extended_macs_bound(lfk1_compiled, ())

    def test_negative_trips_rejected(self, lfk1_compiled):
        with pytest.raises(ModelError):
            extended_macs_bound(lfk1_compiled, (100, -1))

    def test_zero_sum_profile_rejected(self, lfk1_compiled):
        with pytest.raises(ModelError):
            extended_macs_bound(lfk1_compiled, (0, 0))


class TestMacsD:
    STRIDED = (
        "DIMENSION A({s},300), B({s},300), C({s},300)\n"
        "DO 1 k = 1,n\n"
        "1 C(1,k) = A(1,k) + B(1,k)\n"
    )

    def _compiled(self, stride):
        return compile_kernel(
            self.STRIDED.format(s=stride), f"strided{stride}"
        )

    def test_equals_macs_on_clean_strides(self, compiled_kernels):
        """All ten LFKs are bank-conflict-free: MACS-D == MACS."""
        for name, compiled in compiled_kernels.items():
            base = macs_bound(compiled.program)
            dbound = macs_d_bound(compiled.program)
            assert dbound.cpl == pytest.approx(base.cpl), name
            assert dbound.conflicted_strides == ()

    @pytest.mark.parametrize("stride,rate", [(8, 2.0), (16, 4.0),
                                             (32, 8.0)])
    def test_power_of_two_strides_scale(self, stride, rate):
        compiled = self._compiled(stride)
        dbound = macs_d_bound(compiled.program)
        base = macs_bound(compiled.program)
        assert dbound.worst_stream_rate == rate
        assert dbound.cpl == pytest.approx(base.cpl * rate, rel=0.05)
        assert stride in dbound.conflicted_strides

    def test_allocation_penalty(self):
        compiled = self._compiled(32)
        dbound = macs_d_bound(compiled.program)
        assert dbound.allocation_penalty_cpl == pytest.approx(
            dbound.cpl - dbound.macs_cpl
        )
        assert dbound.allocation_penalty_cpl > 20.0

    def test_unit_stride_no_penalty(self):
        compiled = self._compiled(1)
        dbound = macs_d_bound(compiled.program)
        assert dbound.allocation_penalty_cpl == pytest.approx(0.0)


class TestAdvisor:
    def test_lfk1_flags_compiler_reload(self, workload_analyses):
        items = advise(workload_analyses["lfk1"])
        assert any(
            a.target is AdviceTarget.COMPILER
            and "reload" in a.summary for a in items
        )

    def test_lfk8_flags_chime_splits(self, workload_analyses):
        items = advise(workload_analyses["lfk8"])
        top = items[0]
        assert top.target is AdviceTarget.SCHEDULER
        assert "scalar memory" in top.summary
        assert top.estimated_savings_cpl > 5.0

    def test_lfk2_flags_short_vectors(self, workload_analyses):
        items = advise(workload_analyses["lfk2"])
        assert any(
            a.target is AdviceTarget.APPLICATION
            and "longer vectors" in a.summary for a in items
        )

    def test_advice_sorted_by_payoff(self, workload_analyses):
        for analysis in workload_analyses.values():
            items = advise(analysis)
            savings = [a.estimated_savings_cpl for a in items]
            assert savings == sorted(savings, reverse=True)

    def test_savings_bounded_by_measured_time(self, workload_analyses):
        for analysis in workload_analyses.values():
            for advice in advise(analysis):
                assert 0 < advice.estimated_savings_cpl <= \
                    analysis.t_p_cpl

    def test_report_renders(self, workload_analyses):
        text = advise_report(workload_analyses["lfk8"])
        assert "LFK8" in text
        assert "est." in text

    def test_render_with_percentage(self, workload_analyses):
        analysis = workload_analyses["lfk1"]
        advice = advise(analysis)[0]
        text = advice.render(analysis.t_p_cpl)
        assert "% of run time" in text
