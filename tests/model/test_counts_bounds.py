"""MA/MAC operation counting and bounds tests.

The MA counts are validated against the per-kernel references carried
on the :class:`KernelSpec` (the paper's Table 2 values).
"""

import pytest

from repro.model import ma_bound, ma_counts, mac_counts
from repro.model.counts import OperationCounts
from repro.model.macs import inner_loop_body
from repro.workloads import CASE_STUDY_KERNELS


@pytest.mark.parametrize(
    "spec", CASE_STUDY_KERNELS, ids=lambda s: s.name
)
class TestMACountsMatchPaper:
    def test_ma_counts(self, spec, compiled_kernels):
        compiled = compiled_kernels[spec.name]
        plan = compiled.innermost_vector_plan()
        counts = ma_counts(plan.analysis)
        expected = spec.ma
        assert counts.f_add == expected.f_add
        assert counts.f_mul == expected.f_mul
        assert counts.loads == expected.loads
        assert counts.stores == expected.stores

    def test_flops_per_iteration_consistent(self, spec, compiled_kernels):
        compiled = compiled_kernels[spec.name]
        plan = compiled.innermost_vector_plan()
        counts = ma_counts(plan.analysis)
        assert counts.flops == spec.flops_per_iteration


class TestMACCounts:
    def test_lfk1_compiler_reload(self, compiled_kernels):
        """fc reloads the shifted ZX stream: 3 loads vs MA's 2."""
        body = inner_loop_body(compiled_kernels["lfk1"].program)
        counts = mac_counts(body)
        assert counts.loads == 3
        assert counts.stores == 1
        assert counts.f_add == 2
        assert counts.f_mul == 3

    def test_lfk7_compiler_reload(self, compiled_kernels):
        body = inner_loop_body(compiled_kernels["lfk7"].program)
        counts = mac_counts(body)
        assert counts.loads == 9  # U x7 + Z + Y
        assert counts.t_m == 10.0

    def test_lfk8_no_vector_inflation(self, compiled_kernels):
        """LFK8's MAC memory counts equal MA's: the damage there is
        scalar loads, not vector ones."""
        body = inner_loop_body(compiled_kernels["lfk8"].program)
        counts = mac_counts(body)
        assert counts.loads == 15
        assert counts.stores == 6
        assert counts.t_f == 21.0

    def test_lfk9_no_inflation(self, compiled_kernels):
        body = inner_loop_body(compiled_kernels["lfk9"].program)
        counts = mac_counts(body)
        assert (counts.loads, counts.stores) == (10, 1)

    def test_scalar_instructions_not_counted(self, compiled_kernels):
        body = inner_loop_body(compiled_kernels["lfk8"].program)
        counts = mac_counts(body)
        # LFK8's in-loop constant reloads are scalar: not in MAC.
        scalar_loads = sum(1 for i in body if i.is_scalar_memory)
        assert scalar_loads >= 1
        assert counts.loads == 15  # unchanged by them


class TestBounds:
    def test_component_semantics(self):
        counts = OperationCounts(f_add=2, f_mul=3, loads=2, stores=1)
        row = ma_bound(counts)
        assert row.t_f == 3.0  # pipes run concurrently
        assert row.t_m == 3.0  # one port serializes
        assert row.cpl == 3.0
        assert row.memory_bound  # ties go to memory (>=)

    def test_fp_bound_dominates(self):
        counts = OperationCounts(f_add=21, f_mul=15, loads=9, stores=6)
        row = ma_bound(counts)
        assert row.cpl == 21.0
        assert not row.memory_bound

    def test_cpf_conversion(self):
        counts = OperationCounts(f_add=2, f_mul=3, loads=2, stores=1)
        assert ma_bound(counts).cpf(5) == pytest.approx(0.6)

    def test_memory_dominates_all_mac_bounds_except_7_and_8(
        self, workload_analyses
    ):
        """Paper §4.1: t_m' dominates MAC in all ten kernels... and MA
        is memory-limited except for LFKs 7 and 8."""
        for name, analysis in workload_analyses.items():
            if analysis.spec.number in (7, 8):
                assert not analysis.ma.memory_bound, name
            else:
                assert analysis.ma.memory_bound, name
