"""Hierarchy assembly and gap-attribution tests."""

import pytest

from repro.errors import ModelError
from repro.model import analyze_kernel, render_hierarchy, workload_hmean_mflops
from repro.workloads import CASE_STUDY_KERNELS


class TestHierarchyInvariants:
    @pytest.mark.parametrize(
        "spec", CASE_STUDY_KERNELS, ids=lambda s: s.name
    )
    def test_bounds_monotone(self, spec, workload_analyses):
        """t_MA <= t_MAC <= t_MACS <= t_p, always."""
        a = workload_analyses[spec.name]
        assert a.ma.cpl <= a.mac.cpl + 1e-9
        assert a.mac.cpl <= a.macs.cpl + 1e-9
        assert a.macs.cpl <= a.t_p_cpl + 1e-9

    @pytest.mark.parametrize(
        "spec", CASE_STUDY_KERNELS, ids=lambda s: s.name
    )
    def test_macs_at_least_components(self, spec, workload_analyses):
        a = workload_analyses[spec.name]
        assert a.macs.cpl >= max(a.macs_f.cpl, a.macs_m.cpl) - 1e-9

    def test_gap_decomposition_sums(self, lfk1_analysis):
        a = lfk1_analysis
        total = (
            a.compiler_gap_cpl()
            + a.schedule_gap_cpl()
            + a.unmodeled_gap_cpl()
        )
        assert total == pytest.approx(a.t_p_cpl - a.ma.cpl)

    def test_percent_explained_ordering(self, lfk1_analysis):
        a = lfk1_analysis
        assert (
            a.percent_explained("ma")
            <= a.percent_explained("mac")
            <= a.percent_explained("macs")
            <= 100.0 + 1e-9
        )


class TestAnalyzeKernelOptions:
    def test_measure_false_skips_simulation(self):
        analysis = analyze_kernel("lfk1", measure=False)
        assert analysis.t_p_cpl is None
        assert analysis.ax is None
        with pytest.raises(ModelError):
            analysis.percent_explained("macs")

    def test_accepts_name_and_number(self):
        by_name = analyze_kernel("lfk12", measure=False)
        by_number = analyze_kernel(12, measure=False)
        assert by_name.spec is by_number.spec

    def test_nonstandard_n_rejected(self):
        with pytest.raises(ModelError):
            analyze_kernel("lfk1", n=555, measure=False)

    def test_standard_n_accepted(self):
        analysis = analyze_kernel("lfk1", n=1001, measure=False)
        assert analysis.spec.number == 1


class TestDiagnostics:
    def test_lfk1_diagnoses_compiler_gap(self, lfk1_analysis):
        notes = " ".join(lfk1_analysis.diagnose())
        assert "extra memory reference" in notes

    def test_lfk8_diagnoses_chime_splits(self, workload_analyses):
        notes = " ".join(workload_analyses["lfk8"].diagnose())
        assert "split chimes" in notes

    def test_lfk2_diagnoses_unmodeled_gap(self, workload_analyses):
        notes = " ".join(workload_analyses["lfk2"].diagnose())
        assert "unmodeled" in notes

    def test_report_renders(self, lfk1_analysis):
        report = lfk1_analysis.report()
        assert "MA" in report and "MACS" in report
        assert "% of actual explained" in report


class TestWorkloadAggregates:
    def test_hmean_levels_ordered(self, workload_analyses):
        analyses = list(workload_analyses.values())
        hmeans = [
            workload_hmean_mflops(analyses, level)
            for level in ("ma", "mac", "macs", "actual")
        ]
        assert hmeans == sorted(hmeans, reverse=True)

    def test_unknown_level_rejected(self, workload_analyses):
        with pytest.raises(ModelError):
            workload_hmean_mflops(
                list(workload_analyses.values()), "bogus"
            )

    def test_render_hierarchy_mentions_all_levels(self):
        text = render_hierarchy()
        for term in ("t_MA", "t_MAC", "t_MACS", "t_p"):
            assert term in text
