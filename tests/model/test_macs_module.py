"""MACS module error paths and small invariants."""

import pytest

from repro.errors import IsaError, ModelError
from repro.isa import AsmBuilder, Immediate, sreg
from repro.model import macs_bound, macs_f_bound, macs_m_bound
from repro.model.macs import inner_loop_body


def loopless_program():
    b = AsmBuilder("flat")
    b.mov(Immediate(1), sreg(0))
    return b.build()


class TestErrorPaths:
    def test_loopless_program_rejected(self):
        with pytest.raises(IsaError):
            inner_loop_body(loopless_program())

    def test_invalid_vl_rejected(self, lfk1_compiled):
        with pytest.raises(ModelError):
            macs_bound(lfk1_compiled.program, vl=0)


class TestReducedBounds:
    def test_f_bound_ignores_memory(self, lfk1_compiled):
        bound = macs_f_bound(lfk1_compiled.program)
        for chime in bound.partition.chimes:
            assert not chime.has_memory_op

    def test_m_bound_only_memory(self, lfk1_compiled):
        bound = macs_m_bound(lfk1_compiled.program)
        for chime in bound.partition.chimes:
            assert all(
                i.is_vector_memory for i in chime.instructions
            )

    def test_vl_scaling_monotone(self, lfk1_compiled):
        small = macs_bound(lfk1_compiled.program, vl=32)
        large = macs_bound(lfk1_compiled.program, vl=128)
        # CPL per source iteration grows at small VL (bubbles amortize
        # over fewer elements).
        assert small.cpl > large.cpl

    def test_chime_count_property(self, lfk1_compiled):
        assert macs_bound(lfk1_compiled.program).chime_count == 4
