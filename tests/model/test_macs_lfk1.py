"""The §3.5 LFK1 walkthrough, checked number by number."""

import pytest

from repro import paperdata
from repro.isa.timing import default_timing_table
from repro.model import macs_bound, macs_f_bound, macs_m_bound
from repro.model.macs import inner_loop_body
from repro.schedule import partition_chimes


class TestLFK1Walkthrough:
    def test_four_chimes(self, lfk1_compiled):
        partition = partition_chimes(
            inner_loop_body(lfk1_compiled.program)
        )
        assert len(partition) == 4

    def test_chime_cycle_counts(self, lfk1_compiled):
        partition = partition_chimes(
            inner_loop_body(lfk1_compiled.program)
        )
        timings = default_timing_table()
        cycles = sorted(
            c.cycles(128, timings) for c in partition.chimes
        )
        assert cycles == sorted(paperdata.PAPER_LFK1_CHIMES)

    def test_total_527(self, lfk1_compiled):
        partition = partition_chimes(
            inner_loop_body(lfk1_compiled.program)
        )
        assert partition.total_cycles(128, refresh=False) == \
            paperdata.PAPER_LFK1_TOTAL

    def test_refresh_total(self, lfk1_compiled):
        partition = partition_chimes(
            inner_loop_body(lfk1_compiled.program)
        )
        assert partition.total_cycles(128) == pytest.approx(
            paperdata.PAPER_LFK1_WITH_REFRESH
        )

    def test_t_macs_cpl(self, lfk1_compiled):
        bound = macs_bound(lfk1_compiled.program)
        assert bound.cpl == pytest.approx(
            paperdata.PAPER_LFK1_T_MACS_CPL, abs=0.001
        )

    def test_t_macs_cpf(self, lfk1_compiled):
        bound = macs_bound(lfk1_compiled.program)
        assert bound.cpl / 5 == pytest.approx(0.840, abs=0.001)

    def test_f_decomposition(self, lfk1_compiled):
        """Paper Table 5: t_f'' = 3.04 (3 fp chimes + bubbles)."""
        bound = macs_f_bound(lfk1_compiled.program)
        assert bound.chime_count == 3
        assert bound.cpl == pytest.approx(3.04, abs=0.01)

    def test_m_decomposition(self, lfk1_compiled):
        """Memory-only: 4 chimes, ~4.14-4.16 CPL with refresh."""
        bound = macs_m_bound(lfk1_compiled.program)
        assert bound.chime_count == 4
        assert bound.cpl == pytest.approx(4.15, abs=0.03)

    def test_merge_exceeds_components(self, lfk1_compiled):
        macs = macs_bound(lfk1_compiled.program)
        f = macs_f_bound(lfk1_compiled.program)
        m = macs_m_bound(lfk1_compiled.program)
        assert macs.cpl >= max(f.cpl, m.cpl) - 1e-9

    def test_measured_slightly_above_bound(self, lfk1_analysis):
        assert lfk1_analysis.t_p_cpl >= lfk1_analysis.macs.cpl
        assert lfk1_analysis.percent_explained("macs") >= 95.0
