"""The static serving tier: memoization, payloads, cache hygiene."""

import pytest

from repro.machine import DEFAULT_CONFIG
from repro.model import (
    clear_static_cache,
    known_initial_memory,
    predict_kernel,
    static_cache_size,
)
from repro.workloads import clear_caches, compile_spec, workload


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_static_cache()
    yield
    clear_static_cache()


class TestMemoization:
    def test_repeat_is_a_cache_hit(self):
        first = predict_kernel("lfk1")
        assert static_cache_size() == 1
        second = predict_kernel("lfk1")
        assert second is first

    def test_distinct_configs_are_distinct_entries(self):
        predict_kernel("lfk1")
        predict_kernel("lfk1", config=DEFAULT_CONFIG.without_fastpath())
        assert static_cache_size() == 2

    def test_clear_caches_resets_the_memo(self):
        predict_kernel("lfk1")
        assert static_cache_size() == 1
        clear_caches()
        assert static_cache_size() == 0

    def test_number_and_name_resolve_alike(self):
        by_number = predict_kernel(1)
        by_name = predict_kernel("lfk1")
        assert by_number is by_name


class TestPayload:
    def test_vector_kernel_payload_schema(self):
        payload = predict_kernel("lfk3").to_payload()
        assert payload["kernel"] == "lfk3"
        assert payload["tier"] == "exact"
        assert payload["exact"] is True
        assert payload["cycles_low"] <= payload["cycles"]
        assert payload["cycles"] <= payload["cycles_high"]
        assert payload["cpl_low"] <= payload["cpl"] <= payload["cpl_high"]
        macs = payload["macs"]
        assert macs["ma_cpl"] <= macs["mac_cpl"] <= macs["macs_cpl"]
        assert macs["t_p_cpl"] == pytest.approx(payload["cpl"])
        assert payload["advice"], "vector kernels get ranked advice"
        assert "MACS hierarchy" in payload["report"]

    def test_scalar_kernel_payload_has_no_macs(self):
        payload = predict_kernel("lfk5").to_payload()
        assert payload["macs"] is None
        assert payload["advice"] == []
        assert "scalar kernel" in payload["report"]
        assert payload["tier"] == "exact"

    def test_metrics_match_the_run_schema(self):
        metrics = predict_kernel("lfk1").metrics()
        for name in (
            "cycles", "instructions", "vector_instructions",
            "scalar_instructions", "vector_memory_ops",
            "scalar_memory_ops", "flops", "cpl", "cpf",
            "cycles_per_vector_iteration", "mflops",
        ):
            assert name in metrics
        assert metrics["mflops"] > 0

    def test_problem_size_changes_the_answer(self):
        base = predict_kernel("lfk1")
        sized = predict_kernel("lfk1", n=64)
        assert sized.cycles != base.cycles


class TestKnownMemory:
    def test_covers_scalar_inputs_and_literals(self):
        spec = workload("lfk1")
        compiled = compile_spec(spec)
        known = known_initial_memory(spec, compiled)
        for name in spec.scalar_inputs:
            word = compiled.scalar_word_offset(name)
            assert known[word] == pytest.approx(
                float(spec.scalar_inputs[name])
            )
        # Unwritten scalar-region words are zeros, as in the machine.
        assert 0.0 in known.values()
