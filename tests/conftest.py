"""Shared fixtures: compiled kernels and workload analyses are cached
per session — compilation and analysis are deterministic, so every test
can share them."""

from __future__ import annotations

import pytest

from repro.model import analyze_kernel
from repro.workloads import CASE_STUDY_KERNELS, compile_spec, kernel, run_kernel


@pytest.fixture(scope="session")
def compiled_kernels():
    """name -> CompiledKernel for all ten case-study kernels."""
    return {
        spec.name: compile_spec(spec) for spec in CASE_STUDY_KERNELS
    }


@pytest.fixture(scope="session")
def kernel_runs(compiled_kernels):
    """name -> KernelRun (verified) for all ten kernels."""
    runs = {}
    for spec in CASE_STUDY_KERNELS:
        runs[spec.name] = run_kernel(
            spec, compiled=compiled_kernels[spec.name], verify=True
        )
    return runs


@pytest.fixture(scope="session")
def workload_analyses(compiled_kernels):
    """name -> KernelAnalysis (with measurements) for all ten kernels."""
    return {
        spec.name: analyze_kernel(spec)
        for spec in CASE_STUDY_KERNELS
    }


@pytest.fixture(scope="session")
def lfk1_compiled(compiled_kernels):
    return compiled_kernels["lfk1"]


@pytest.fixture(scope="session")
def lfk1_analysis(workload_analyses):
    return workload_analyses["lfk1"]
