"""Direct tests of the scalar code generator (expression evaluation,
addressing, compare/branch mapping)."""

import numpy as np
import pytest

from repro.compiler.scalar import (
    ScalarCompiler,
    ScalarEnvironment,
    expression_is_real,
)
from repro.errors import CompileError
from repro.isa import AsmBuilder, Immediate, areg, sreg
from repro.lang import analyze_program, parse_source
from repro.machine import Simulator


def make_env(source="DIMENSION X(64)\n"):
    program = parse_source(source)
    table = analyze_program(program)
    builder = AsmBuilder("scalar-test")
    builder.data("X", 64)
    env = ScalarEnvironment(
        builder=builder,
        table=table,
        a_scratch=(1, 2, 3),
        s_scratch=(0, 1),
    )
    builder.mov(Immediate(0), areg(0))
    return env, ScalarCompiler(env)


def finish_and_run(env, scalars=None):
    env.builder.data("SCALARS", max(len(env.slots), 1))
    env.builder.data("LITS", max(len(env.literal_slots), 1))
    program = env.builder.build()
    sim = Simulator(program)
    if env.literal_values():
        sim.load_symbol("LITS", np.asarray(env.literal_values()))
    scalars_base = program.layout.lookup("SCALARS").offset_words
    for name, value in (scalars or {}).items():
        sim.memory.load_array(
            scalars_base + env.slot_of(name), np.asarray([float(value)])
        )
    sim.run()
    return sim, scalars_base


def expr_of(text):
    program = parse_source(f"X = {text}")
    return program.statements[0].expr


class TestIntegerEvaluation:
    def test_constant(self):
        env, compiler = make_env()
        compiler.eval_int(expr_of("42"), areg(4))
        env.builder.sstore(areg(4), env.slot_mem("out"))
        sim, base = finish_and_run(env)
        assert sim.memory.dump_array(base + env.slot_of("out"), 1)[0] == 42

    def test_arithmetic_with_variables(self):
        env, compiler = make_env()
        compiler.eval_int(expr_of("(n - 7)/2 + m*3"), areg(4))
        env.builder.sstore(areg(4), env.slot_mem("out"))
        sim, base = finish_and_run(env, {"n": 1001, "m": 4})
        assert sim.memory.dump_array(
            base + env.slot_of("out"), 1
        )[0] == (1001 - 7) // 2 + 12

    def test_unary_minus(self):
        env, compiler = make_env()
        compiler.eval_int(expr_of("-(n + 1)"), areg(4))
        env.builder.sstore(areg(4), env.slot_mem("out"))
        sim, base = finish_and_run(env, {"n": 9})
        assert sim.memory.dump_array(base + env.slot_of("out"), 1)[0] == -10

    def test_scratch_exhaustion_reported(self):
        env, compiler = make_env()
        deep = expr_of("((n+1)*(n+2))*((n+3)*(n+4))*((n+5)*(n+6))")
        with pytest.raises(CompileError):
            compiler.eval_int(deep, areg(4), scratch=())


class TestRealEvaluation:
    def test_literal_through_lits(self):
        env, compiler = make_env()
        compiler.eval_fp(expr_of("0.25"), sreg(2))
        env.builder.sstore(sreg(2), env.slot_mem("out"))
        sim, base = finish_and_run(env)
        assert sim.memory.dump_array(
            base + env.slot_of("out"), 1
        )[0] == 0.25

    def test_integer_valued_literal_immediate(self):
        env, compiler = make_env()
        compiler.eval_fp(expr_of("3.0"), sreg(2))
        assert not env.literal_slots  # no LITS slot needed
        env.builder.sstore(sreg(2), env.slot_mem("out"))
        sim, base = finish_and_run(env)
        assert sim.memory.dump_array(base + env.slot_of("out"), 1)[0] == 3.0

    def test_array_element_access(self):
        env, compiler = make_env()
        compiler.eval_fp(expr_of("X(k) + X(5)"), sreg(2))
        env.builder.sstore(sreg(2), env.slot_mem("out"))
        program_env = env
        env.builder.data("SCALARS", max(len(env.slots), 1))
        env.builder.data("LITS", 1)
        program = env.builder.build()
        sim = Simulator(program)
        sim.load_symbol("X", np.arange(64, dtype=float) + 1.0)
        base = program.layout.lookup("SCALARS").offset_words
        sim.memory.load_array(
            base + program_env.slot_of("k"), np.asarray([3.0])
        )
        sim.run()
        # X(3) + X(5) = 3 + 5 (values are index+... data is idx+1: X(3)=3)
        assert sim.memory.dump_array(
            base + program_env.slot_of("out"), 1
        )[0] == 3.0 + 5.0


class TestTypeClassification:
    def test_integer_expression(self):
        env, _ = make_env()
        assert not expression_is_real(expr_of("n + 1"), env.table)

    def test_real_by_constant(self):
        env, _ = make_env()
        assert expression_is_real(expr_of("n + 1.5"), env.table)

    def test_real_by_variable(self):
        env, _ = make_env()
        assert expression_is_real(expr_of("Q"), env.table)

    def test_real_by_array(self):
        env, _ = make_env()
        assert expression_is_real(expr_of("X(1)"), env.table)


class TestCompareBranch:
    @pytest.mark.parametrize(
        "op,lhs,rhs,taken",
        [
            (">", 5, 3, True), (">", 3, 5, False),
            ("<", 3, 5, True), ("<", 5, 3, False),
            (">=", 5, 5, True), (">=", 4, 5, False),
            ("<=", 5, 5, True), ("<=", 6, 5, False),
            ("==", 7, 7, True), ("==", 7, 8, False),
            ("/=", 7, 8, True), ("/=", 7, 7, False),
        ],
    )
    def test_all_relations(self, op, lhs, rhs, taken):
        source = (
            f"      i = 0\n"
            f"      IF (n {op} m) GOTO 9\n"
            f"      i = 1\n"
            f"    9 CONTINUE\n"
            f"      j = 5\n"
        )
        from repro.compiler import compile_kernel

        compiled = compile_kernel(source, "cmp")
        sim = Simulator(compiled.program)
        sim.memory.load_array(
            compiled.scalar_word_offset("n"), np.asarray([float(lhs)])
        )
        sim.memory.load_array(
            compiled.scalar_word_offset("m"), np.asarray([float(rhs)])
        )
        sim.run()
        i_value = sim.memory.dump_array(
            compiled.scalar_word_offset("i"), 1
        )[0]
        assert (i_value == 0) == taken  # skipped "i = 1" iff taken
