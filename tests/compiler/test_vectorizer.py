"""Vectorizer (AST -> vector IR) tests."""

import pytest

from repro.compiler import (
    CompilerOptions,
    DEFAULT_OPTIONS,
    ReductionStyle,
    ScalarKind,
    VectorOpKind,
    Vectorizer,
)
from repro.errors import VectorizationError
from repro.lang import DoLoop, analyze_loop, analyze_program, parse_source, walk_statements
from repro.lang.analysis import collect_integer_constants


def build_ir(source, options=DEFAULT_OPTIONS, nested=False, ivdep=False):
    program = parse_source(source)
    table = analyze_program(program)
    loops = [
        s for s in walk_statements(program.statements)
        if isinstance(s, DoLoop)
        and not any(isinstance(x, DoLoop) for x in s.body)
    ]
    constants = collect_integer_constants(program.statements)
    analysis = analyze_loop(loops[0], table, ivdep=ivdep,
                            constants=constants)
    return Vectorizer(analysis, table, options, nested).build()


LFK1_LIKE = (
    "DIMENSION X(1001), Y(1001), ZX(1023)\n"
    "DO 1 k = 1,n\n"
    "1 X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))\n"
)


class TestLowering:
    def test_lfk1_op_counts(self):
        ir = build_ir(LFK1_LIKE)
        assert ir.vector_memory_ops() == 4  # 3 loads + 1 store
        assert ir.vector_fp_ops() == 5  # 3 muls + 2 adds

    def test_scalar_operands_pooled(self):
        ir = build_ir(LFK1_LIKE)
        names = {s.name for s in ir.scalars}
        assert names == {"Q", "R", "T"}
        # R used twice but pooled once.
        assert len(ir.scalars) == 3

    def test_load_cse_for_identical_refs(self):
        ir = build_ir(
            "DIMENSION X(100), Y(100)\nDO 1 k = 1,n\n"
            "1 X(k) = Y(k)*Y(k)\n"
        )
        loads = [op for op in ir.ops if op.kind is VectorOpKind.LOAD]
        assert len(loads) == 1

    def test_shifted_refs_not_merged_by_default(self):
        ir = build_ir(
            "DIMENSION X(100), Y(110)\nDO 1 k = 1,n\n"
            "1 X(k) = Y(k) + Y(k+1)\n"
        )
        loads = [op for op in ir.ops if op.kind is VectorOpKind.LOAD]
        assert len(loads) == 2  # fc reloads shifted streams

    def test_shifted_reuse_option_merges(self):
        ir = build_ir(
            "DIMENSION X(100), Y(110)\nDO 1 k = 1,n\n"
            "1 X(k) = Y(k) + Y(k+1)\n",
            options=DEFAULT_OPTIONS.replace(reuse_shifted_loads=True),
        )
        loads = [op for op in ir.ops if op.kind is VectorOpKind.LOAD]
        assert len(loads) == 1

    def test_store_forwarding(self):
        """LFK8 pattern: a load of a just-stored element reuses it."""
        ir = build_ir(
            "DIMENSION D(100), X(100), Y(100), Z(100)\n"
            "DO 1 k = 1,n\n"
            "D(k) = X(k) - Y(k)\n"
            "1 Z(k) = D(k)*X(k)\n"
        )
        loads = [op for op in ir.ops if op.kind is VectorOpKind.LOAD]
        assert len(loads) == 2  # X once (CSE), Y once, D forwarded

    def test_local_scalars_become_temps(self):
        """LFK10's AR/BR/CR chain."""
        ir = build_ir(
            "DIMENSION PX(25,101), CX(25,101)\nDO 1 i = 1,n\n"
            "AR = CX(5,i)\n"
            "BR = AR - PX(5,i)\n"
            "PX(5,i) = AR\n"
            "1 PX(6,i) = BR\n"
        )
        stores = [op for op in ir.ops if op.kind is VectorOpKind.STORE]
        assert len(stores) == 2
        assert ir.vector_fp_ops() == 1  # only the subtraction

    def test_unary_minus_lowered_as_neg(self):
        ir = build_ir(
            "DIMENSION X(100), Y(100)\nDO 1 k = 1,n\n"
            "1 X(k) = -Y(k)\n"
        )
        assert any(op.kind is VectorOpKind.NEG for op in ir.ops)

    def test_heavier_subtree_first(self):
        """Sethi-Ullman order: ZX subexpression before the Y load."""
        ir = build_ir(LFK1_LIKE)
        loads = [op for op in ir.ops if op.kind is VectorOpKind.LOAD]
        assert loads[0].stream.array == "ZX"


class TestReductionPlans:
    REDUCTION = (
        "DIMENSION Z(100), X(100)\nQ = 0.0\nDO 3 k = 1,n\n"
        "3 Q = Q + Z(k)*X(k)\n"
    )

    def test_top_level_uses_partial_sums(self):
        ir = build_ir(self.REDUCTION, nested=False)
        assert ir.reduction.style == "partial-sums"
        assert ir.reduction.accumulator in ir.pinned

    def test_nested_uses_direct_sum(self):
        ir = build_ir(self.REDUCTION, nested=True)
        assert ir.reduction.style == "direct-sum"
        assert ir.reduction.accumulator is None

    def test_forced_styles(self):
        forced = DEFAULT_OPTIONS.replace(
            reduction_style=ReductionStyle.DIRECT_SUM
        )
        assert build_ir(self.REDUCTION, options=forced).reduction.style \
            == "direct-sum"
        forced = DEFAULT_OPTIONS.replace(
            reduction_style=ReductionStyle.PARTIAL_SUMS
        )
        assert build_ir(
            self.REDUCTION, options=forced, nested=True
        ).reduction.style == "partial-sums"


class TestRejections:
    def test_non_vectorizable_analysis_rejected(self):
        with pytest.raises(VectorizationError):
            build_ir(
                "DIMENSION X(100)\nDO 1 k = 2,n\n1 X(k) = X(k-1)\n"
            )

    def test_scalar_recurrence_rejected(self):
        with pytest.raises(VectorizationError):
            build_ir(
                "DIMENSION X(100)\nDO 1 k = 1,n\n"
                "acc = acc*2.0\n"
                "1 X(k) = acc\n"
            )

    def test_invariant_store_rejected(self):
        with pytest.raises(VectorizationError):
            build_ir(
                "DIMENSION X(100)\nDO 1 k = 1,n\n1 X(k) = Q\n"
            )
