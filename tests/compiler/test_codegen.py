"""Whole-kernel code generation tests."""

import numpy as np
import pytest

from repro.compiler import (
    DEFAULT_OPTIONS,
    SCALARS_SYMBOL,
    compile_kernel,
)
from repro.errors import CompileError, VectorizationError
from repro.machine import Simulator

SIMPLE = (
    "DIMENSION X(300), Y(310)\n"
    "DO 1 k = 1,n\n"
    "1 X(k) = Y(k+1) - Y(k)\n"
)


def run_compiled(compiled, arrays, scalars):
    sim = Simulator(compiled.program)
    for name, values in compiled.initial_data(arrays).items():
        sim.load_symbol(name, values)
    for name, value in scalars.items():
        sim.memory.load_array(
            compiled.scalar_word_offset(name),
            np.asarray([float(value)]),
        )
    result = sim.run()
    return sim, result


class TestStructure:
    def test_strip_loop_emitted(self):
        compiled = compile_kernel(SIMPLE, "simple")
        assert compiled.loops[0].vectorized
        start, end = compiled.program.innermost_loop()
        body = compiled.program.loop_slice((start, end))
        assert body[0].name == "mov.w"  # VL setup
        assert body[-1].name == "jbrs.t"

    def test_data_regions_allocated(self):
        compiled = compile_kernel(SIMPLE, "simple")
        layout = compiled.program.layout
        assert "X" in layout and "Y" in layout
        assert SCALARS_SYMBOL in layout
        assert "VZERO" in layout

    def test_scalar_slots_assigned(self):
        compiled = compile_kernel(SIMPLE, "simple")
        assert "n" in compiled.scalar_slots
        assert compiled.scalar_word_offset("n") >= 0

    def test_unknown_scalar_rejected(self):
        compiled = compile_kernel(SIMPLE, "simple")
        with pytest.raises(CompileError):
            compiled.scalar_word_offset("bogus")


class TestExecution:
    def test_first_difference_values(self):
        compiled = compile_kernel(SIMPLE, "simple")
        y = np.linspace(0.0, 1.0, 310)
        sim, _ = run_compiled(compiled, {"Y": y}, {"n": 300})
        x = sim.dump_symbol("X", 300)
        assert np.allclose(x, y[1:301] - y[:300])

    def test_zero_trip_loop_guarded(self):
        compiled = compile_kernel(SIMPLE, "simple")
        sim, result = run_compiled(
            compiled, {"Y": np.ones(310)}, {"n": 0}
        )
        assert result.vector_instructions == 0

    def test_single_iteration_loop(self):
        compiled = compile_kernel(SIMPLE, "simple")
        y = np.arange(310, dtype=float)
        sim, _ = run_compiled(compiled, {"Y": y}, {"n": 1})
        assert sim.dump_symbol("X", 1)[0] == 1.0

    def test_loop_variable_final_value_stored(self):
        """Fortran: after DO k=1,n the counter holds n+1."""
        compiled = compile_kernel(SIMPLE, "simple")
        sim, _ = run_compiled(
            compiled, {"Y": np.ones(310)}, {"n": 300}
        )
        k_final = sim.memory.dump_array(
            compiled.scalar_word_offset("k"), 1
        )[0]
        assert k_final == 301

    def test_induction_final_value_stored(self):
        source = (
            "DIMENSION X(500), Y(500)\n"
            "i = 0\n"
            "DO 1 k = 2,n,2\n"
            "i = i + 1\n"
            "1 X(i) = Y(k)\n"
        )
        compiled = compile_kernel(
            source, "ind", DEFAULT_OPTIONS.replace(ivdep=True)
        )
        sim, _ = run_compiled(
            compiled, {"Y": np.arange(500.0)}, {"n": 100}
        )
        i_final = sim.memory.dump_array(
            compiled.scalar_word_offset("i"), 1
        )[0]
        assert i_final == 50


class TestScalarFallback:
    RECURRENCE = (
        "DIMENSION X(200)\n"
        "DO 1 k = 2,n\n"
        "1 X(k) = X(k-1)*0.5 + X(k)\n"
    )

    def test_fallback_marks_plan(self):
        compiled = compile_kernel(self.RECURRENCE, "rec")
        assert not compiled.loops[0].vectorized
        assert "recurrence" in compiled.loops[0].reason

    def test_fallback_executes_serially_correct(self):
        compiled = compile_kernel(self.RECURRENCE, "rec")
        x = np.linspace(1.0, 2.0, 200)
        sim, result = run_compiled(compiled, {"X": x.copy()}, {"n": 50})
        expected = x.copy()
        for k in range(2, 51):
            expected[k - 1] = expected[k - 2] * 0.5 + expected[k - 1]
        assert np.allclose(sim.dump_symbol("X", 200), expected)
        assert result.vector_instructions == 0

    def test_fallback_disabled_raises(self):
        with pytest.raises(VectorizationError):
            compile_kernel(
                self.RECURRENCE, "rec",
                DEFAULT_OPTIONS.replace(allow_scalar_fallback=False),
            )


class TestGotoControl:
    HALVING = (
        "DIMENSION X(400), V(400)\n"
        "II = n\n"
        "IPNTP = 0\n"
        "  222 IPNT = IPNTP\n"
        "IPNTP = IPNTP + II\n"
        "II = II/2\n"
        "i = IPNTP\n"
        "DO 2 k = IPNT+2, IPNTP, 2\n"
        "i = i + 1\n"
        "2 X(i) = X(k) - V(k)*X(k-1) - V(k+1)*X(k+1)\n"
        "IF (II > 1) GOTO 222\n"
    )

    def test_goto_loop_terminates(self):
        compiled = compile_kernel(
            self.HALVING, "halving",
            DEFAULT_OPTIONS.replace(ivdep=True),
        )
        sim, result = run_compiled(
            compiled,
            {"X": np.ones(400), "V": np.full(400, 0.5)},
            {"n": 40},
        )
        assert result.cycles > 0

    def test_literal_constants_loaded(self):
        source = (
            "DIMENSION X(200), Y(200)\n"
            "DO 1 k = 1,n\n"
            "1 X(k) = Y(k)*0.25 + 1.5\n"
        )
        compiled = compile_kernel(source, "lits")
        assert 0.25 in compiled.literal_values
        assert 1.5 in compiled.literal_values
        y = np.arange(200, dtype=float)
        sim, _ = run_compiled(compiled, {"Y": y}, {"n": 100})
        assert np.allclose(
            sim.dump_symbol("X", 100), y[:100] * 0.25 + 1.5
        )
