"""Vector register allocation tests."""

import pytest

from repro.compiler.ir import (
    ScalarKind,
    ScalarOperand,
    Stream,
    VTemp,
    VectorLoopIR,
    VectorOp,
    VectorOpKind,
)
from repro.compiler.regalloc import (
    NUM_VECTOR_REGS,
    SPILL_SYMBOL,
    allocate_registers,
)
from repro.errors import RegisterAllocationError
from repro.lang.analysis import LinearForm


def stream(array="A", const=0):
    return Stream(array=array, stride_words=1,
                  base=LinearForm(const=const), is_store=False)


def load(index):
    return VectorOp(VectorOpKind.LOAD, (), VTemp(index),
                    stream=stream(const=index * 128))


def add(a, b, out):
    return VectorOp(VectorOpKind.ADD, (VTemp(a), VTemp(b)), VTemp(out))


class TestBasicAllocation:
    def test_simple_chain(self):
        ir = VectorLoopIR(ops=[load(0), load(1), add(0, 1, 2)])
        result = allocate_registers(ir)
        assert result.spill_slots_used == 0
        regs = [op.output_reg for op in result.ops]
        assert regs[0] != regs[1]

    def test_registers_reused_after_death(self):
        ops = []
        for i in range(20):  # 20 sequential loads, each dies quickly
            ops.append(load(i))
            if i >= 1:
                ops.append(add(i - 1, i, 100 + i))
        ir = VectorLoopIR(ops=ops)
        result = allocate_registers(ir)
        assert result.spill_slots_used == 0

    def test_in_place_accumulator(self):
        acc = VTemp(99)
        ir = VectorLoopIR(
            ops=[load(0), VectorOp(VectorOpKind.ADD, (acc, VTemp(0)), acc)],
            pinned={acc},
        )
        result = allocate_registers(ir)
        acc_reg = result.pinned_regs[acc]
        update = result.ops[-1]
        assert update.output_reg == acc_reg
        assert update.input_regs[0] == acc_reg

    def test_pinned_register_never_reused(self):
        acc = VTemp(99)
        ops = [load(i) for i in range(10)]
        ops.append(VectorOp(VectorOpKind.ADD, (acc, VTemp(9)), acc))
        ir = VectorLoopIR(ops=ops, pinned={acc})
        result = allocate_registers(ir)
        acc_reg = result.pinned_regs[acc]
        for allocated in result.ops[:-1]:
            assert allocated.output_reg != acc_reg

    def test_scalar_operands_pass_through(self):
        scalar = ScalarOperand(ScalarKind.VARIABLE, "R")
        ir = VectorLoopIR(
            ops=[
                load(0),
                VectorOp(VectorOpKind.MUL, (scalar, VTemp(0)), VTemp(1)),
            ]
        )
        result = allocate_registers(ir)
        assert result.ops[1].input_regs[0] is scalar

    def test_pair_spread(self):
        """Consecutive definitions land in distinct register pairs."""
        ir = VectorLoopIR(
            ops=[load(0), VectorOp(VectorOpKind.MUL,
                                   (VTemp(0), VTemp(0)), VTemp(1))]
        )
        result = allocate_registers(ir)
        r0 = result.ops[0].output_reg
        r1 = result.ops[1].output_reg
        assert r0 % 4 != r1 % 4


class TestSpilling:
    def make_pressure_ir(self, live):
        """`live` simultaneously-live loads, all consumed at the end."""
        ops = [load(i) for i in range(live)]
        out = live
        previous = 0
        for i in range(1, live):
            ops.append(add(previous, i, out))
            previous = out
            out += 1
        return VectorLoopIR(ops=ops)

    def test_no_spill_at_eight(self):
        result = allocate_registers(self.make_pressure_ir(8))
        assert result.spill_slots_used == 0

    def test_spill_beyond_eight(self):
        result = allocate_registers(self.make_pressure_ir(10))
        assert result.spill_slots_used >= 1
        assert result.spill_stores >= 1
        assert result.spill_loads >= 1

    def test_spill_ops_use_spill_symbol(self):
        result = allocate_registers(self.make_pressure_ir(10))
        spill_ops = [
            a for a in result.ops
            if a.op.stream is not None
            and a.op.stream.array == SPILL_SYMBOL
        ]
        assert spill_ops

    def test_spilled_values_correctly_restored_order(self):
        """Spill store for a temp precedes its reload."""
        result = allocate_registers(self.make_pressure_ir(12))
        seen_stores = set()
        for allocated in result.ops:
            s = allocated.op.stream
            if s is None or s.array != SPILL_SYMBOL:
                continue
            slot = s.base.const
            if allocated.op.kind is VectorOpKind.STORE:
                seen_stores.add(slot)
            else:
                assert slot in seen_stores

    def test_all_pinned_rejected(self):
        pinned = {VTemp(i) for i in range(NUM_VECTOR_REGS)}
        ops = [load(100)]
        ir = VectorLoopIR(ops=ops, pinned=pinned)
        with pytest.raises(RegisterAllocationError):
            allocate_registers(ir)

    def test_use_before_definition_rejected(self):
        ir = VectorLoopIR(ops=[add(0, 1, 2)])
        with pytest.raises(RegisterAllocationError):
            allocate_registers(ir)
