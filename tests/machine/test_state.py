"""RegisterFile state tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa import VL, VM, VS, areg, sreg, vreg
from repro.machine import RegisterFile


class TestScalarAccess:
    def test_address_registers_integer(self):
        regfile = RegisterFile()
        regfile.write(areg(3), 1024.7)
        assert regfile.read(areg(3)) == 1024
        assert isinstance(regfile.read(areg(3)), int)

    def test_scalar_registers_float(self):
        regfile = RegisterFile()
        regfile.write(sreg(2), 2.5)
        assert regfile.read(sreg(2)) == 2.5

    def test_vl_clamping(self):
        regfile = RegisterFile()
        regfile.write(VL, 1000)
        assert regfile.vl == 128
        regfile.write(VL, -5)
        assert regfile.vl == 0
        regfile.write(VL, 37)
        assert regfile.read(VL) == 37

    def test_custom_max_vl(self):
        regfile = RegisterFile(max_vl=64)
        regfile.write(VL, 128)
        assert regfile.vl == 64

    def test_vs_register(self):
        regfile = RegisterFile()
        regfile.write(VS, 25)
        assert regfile.read(VS) == 25

    def test_vector_register_not_scalar_readable(self):
        regfile = RegisterFile()
        with pytest.raises(SimulationError):
            regfile.read(vreg(0))
        with pytest.raises(SimulationError):
            regfile.write(vreg(0), 1.0)

    def test_vm_not_scalar_readable(self):
        regfile = RegisterFile()
        with pytest.raises(SimulationError):
            regfile.read(VM)


class TestVectorAccess:
    def test_read_write_respect_vl(self):
        regfile = RegisterFile()
        regfile.vl = 3
        regfile.write_vector(vreg(1), np.array([1.0, 2.0, 3.0]))
        assert list(regfile.read_vector(vreg(1))) == [1.0, 2.0, 3.0]
        assert regfile.v[1, 3] == 0.0

    def test_scalar_register_rejected_for_vector_ops(self):
        regfile = RegisterFile()
        with pytest.raises(SimulationError):
            regfile.read_vector(sreg(0))
        with pytest.raises(SimulationError):
            regfile.write_vector(areg(0), np.zeros(128))
