"""Memory system tests: storage, banks, refresh."""

import numpy as np
import pytest

from repro.errors import MachineError, MemoryError_
from repro.machine import MachineConfig, MemorySystem

CFG = MachineConfig()


def make_memory(words=256, config=CFG):
    return MemorySystem(words, config)


class TestFunctionalStorage:
    def test_word_read_write(self):
        mem = make_memory()
        mem.write_word(16, 2.5)
        assert mem.read_word(16) == 2.5

    def test_unaligned_access_rejected(self):
        with pytest.raises(MemoryError_):
            make_memory().read_word(5)

    def test_out_of_range_rejected(self):
        with pytest.raises(MemoryError_):
            make_memory(8).read_word(64)

    def test_vector_round_trip(self):
        mem = make_memory()
        values = np.arange(10, dtype=float)
        mem.write_vector(0, 2, values)
        assert np.array_equal(mem.read_vector(0, 2, 10), values)

    def test_negative_stride_vector(self):
        mem = make_memory()
        mem.load_array(0, np.arange(32, dtype=float))
        got = mem.read_vector(8 * 10, -1, 5)
        assert np.array_equal(got, [10, 9, 8, 7, 6])

    def test_vector_overrun_rejected(self):
        with pytest.raises(MemoryError_):
            make_memory(16).read_vector(0, 4, 10)

    def test_negative_stride_underrun_rejected(self):
        with pytest.raises(MemoryError_):
            make_memory(16).read_vector(8, -1, 5)

    def test_load_and_dump_array(self):
        mem = make_memory()
        mem.load_array(10, np.array([1.0, 2.0, 3.0]))
        assert list(mem.dump_array(10, 3)) == [1.0, 2.0, 3.0]

    def test_load_array_bounds(self):
        with pytest.raises(MemoryError_):
            make_memory(4).load_array(2, np.zeros(8))


class TestBankRates:
    @pytest.mark.parametrize(
        "stride,rate",
        [
            (1, 1.0),
            (2, 1.0),
            (3, 1.0),
            (4, 1.0),
            (5, 1.0),
            (25, 1.0),
            (8, 2.0),     # revisits a bank every 4 accesses
            (16, 4.0),
            (32, 8.0),    # hammers one bank: full bank-busy time
            (64, 8.0),
            (0, 1.0),     # broadcast served from the bank buffer
            (-1, 1.0),
            (-8, 2.0),
        ],
    )
    def test_stream_rate(self, stride, rate):
        assert make_memory().stream_rate(stride) == rate

    def test_contention_scales_rate(self):
        loaded = MemorySystem(64, CFG.with_contention(1.5))
        assert loaded.stream_rate(1) == 1.5


class TestRefresh:
    def test_window_detection(self):
        mem = make_memory()
        assert mem.refresh_window_containing(401.0) == (400.0, 408.0)
        assert mem.refresh_window_containing(399.0) is None
        assert mem.refresh_window_containing(410.0) is None

    def test_scalar_access_stalled_out_of_window(self):
        mem = make_memory()
        assert mem.stall_scalar_access(402.0) == 408.0
        assert mem.stall_scalar_access(100.0) == 100.0

    def test_stream_stall_counts_boundaries(self):
        mem = make_memory()
        # Stream spanning one refresh boundary loses 8 cycles.
        assert mem.refresh_stall_for_stream(300.0, 500.0) == 8.0
        # Spanning two (after extension) boundaries loses 16.
        assert mem.refresh_stall_for_stream(300.0, 799.0) == 16.0
        # No boundary inside: no stall.
        assert mem.refresh_stall_for_stream(100.0, 300.0) == 0.0

    def test_stream_starting_inside_window_waits_it_out(self):
        mem = make_memory()
        # Starts during the 400-408 refresh (7 cycles left), and the
        # pushed-out end then crosses the 800 refresh too: 7 + 8.
        assert mem.refresh_stall_for_stream(401.0, 798.0) == 15.0

    def test_stall_extension_cascades(self):
        mem = make_memory()
        # Ends at 795; the first stall (from 400) pushes it past 800,
        # exposing a second refresh.
        assert mem.refresh_stall_for_stream(399.0, 795.0) == 16.0
        assert mem.refresh_stall_for_stream(399.0, 790.0) == 8.0

    def test_refresh_disabled(self):
        mem = MemorySystem(64, CFG.without_refresh())
        assert mem.refresh_stall_for_stream(0.0, 10_000.0) == 0.0
        assert mem.stall_scalar_access(402.0) == 402.0


class TestConfigValidation:
    def test_contention_below_one_rejected(self):
        with pytest.raises(MachineError):
            MachineConfig(memory_contention_factor=0.5)

    def test_refresh_must_exceed_duration(self):
        with pytest.raises(MachineError):
            MachineConfig(refresh_period=8, refresh_duration=8)

    def test_negative_size_rejected(self):
        with pytest.raises(MemoryError_):
            MemorySystem(-1, CFG)

    def test_clock_rate(self):
        assert CFG.clock_mhz == 25.0

    def test_effective_access_ns(self):
        assert CFG.with_contention(1.5).effective_access_ns() == 60.0
