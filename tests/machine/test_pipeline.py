"""Timing-model tests: chaining, tailgating, bubbles, ports, refresh.

The key fixture programs mirror the paper's §3.3 worked examples, so
the expected cycle counts are the paper's numbers.
"""

import pytest

from repro.isa import AsmBuilder, Immediate, areg, sreg, vreg
from repro.machine import MachineConfig, Simulator

NO_REFRESH = MachineConfig().without_refresh()


def chained_chime_program(copies=1):
    """ld -> add -> mul chained chime(s), VL = 128 (paper Figure 2)."""
    b = AsmBuilder("chime")
    data = b.data("arr", 8192)
    b.mov(Immediate(0), areg(0))
    b.mov(Immediate(0), areg(5))
    b.set_vl(Immediate(128))
    for _ in range(copies):
        b.vload(b.mem(data, areg(5)), vreg(0))
        b.vadd(vreg(0), vreg(1), vreg(2))
        b.vmul(vreg(2), vreg(3), vreg(5))
        b.add_imm(1024, areg(5))
    return b.build()


def run_traced(program, config=NO_REFRESH):
    sim = Simulator(program, config)
    sim.regfile.prime_vectors()
    return sim.run(record_trace=True)


def vector_trace(result):
    return [t for t in result.trace if t.pipe is not None]


class TestChaining:
    def test_first_chime_166_cycles(self):
        """Paper: 162 chained + 4 bubble cycles = 166."""
        result = run_traced(chained_chime_program(1))
        trace = vector_trace(result)
        assert trace[2].complete - trace[0].dispatch == 166.0

    def test_chaining_beats_serial_execution(self):
        """Paper: 422 cycles unchained vs 166 chained."""
        result = run_traced(chained_chime_program(1))
        trace = vector_trace(result)
        assert trace[2].complete - trace[0].dispatch < 422

    def test_consumer_starts_at_first_result(self):
        result = run_traced(chained_chime_program(1))
        load, add, _ = vector_trace(result)
        # add enters right after the load's first element (plus B).
        assert add.start == pytest.approx(load.first_result + 1.0)

    def test_steady_state_chime_near_vl(self):
        """Successive chimes asymptotically cost ~VL (+ bubbles)."""
        result = run_traced(chained_chime_program(8))
        trace = vector_trace(result)
        ends = [trace[3 * i + 2].complete for i in range(8)]
        deltas = [b - a for a, b in zip(ends[3:], ends[4:])]
        for delta in deltas:
            assert 128.0 <= delta <= 134.0


class TestTailgating:
    def test_loads_tailgate_with_bubble(self):
        b = AsmBuilder("loads")
        data = b.data("arr", 4096)
        b.mov(Immediate(0), areg(0))
        b.mov(Immediate(0), areg(5))
        b.set_vl(Immediate(128))
        for i in range(3):
            b.vload(b.mem(data, areg(5), 128 * i), vreg(i))
        result = run_traced(b.build())
        loads = vector_trace(result)
        # Each subsequent load enters the pipe VL + B(=2) later.
        assert loads[1].start - loads[0].start == 130.0
        assert loads[2].start - loads[1].start == 130.0

    def test_bubble_ablation_removes_gap(self):
        b = AsmBuilder("loads")
        data = b.data("arr", 4096)
        b.mov(Immediate(0), areg(0))
        b.mov(Immediate(0), areg(5))
        b.set_vl(Immediate(128))
        for i in range(2):
            b.vload(b.mem(data, areg(5), 128 * i), vreg(i))
        result = run_traced(
            b.build(), NO_REFRESH.without_bubbles()
        )
        loads = vector_trace(result)
        assert loads[1].start - loads[0].start == 128.0


class TestMemoryPort:
    def test_scalar_load_waits_for_vector_stream(self):
        b = AsmBuilder("port")
        data = b.data("arr", 4096)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(128))
        b.vload(b.mem(data, areg(0)), vreg(0))
        b.sload(b.mem(data, areg(0), 1024), sreg(1))
        result = run_traced(b.build())
        scalar = result.trace[-1]
        vector = vector_trace(result)[0]
        # The scalar access cannot slip under the streaming vector load.
        assert scalar.start >= vector.start + 128

    def test_add_pipe_does_not_block_port(self):
        b = AsmBuilder("noport")
        b.data("arr", 4096)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(128))
        b.vadd(vreg(0), vreg(1), vreg(2))
        b.sload(b.mem("arr", areg(0)), sreg(1))
        result = run_traced(b.build())
        scalar = result.trace[-1]
        assert scalar.start < 20  # issues immediately


class TestDivide:
    def test_divide_rate(self):
        b = AsmBuilder("div")
        b.data("arr", 256)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(128))
        b.vdiv(vreg(0), vreg(1), vreg(2))
        result = run_traced(b.build())
        div = vector_trace(result)[0]
        # Z=4: the stream spans 4*128 cycles after the Y latency.
        assert div.complete - div.first_result == 4 * 128

    def test_divide_chained_consumer_inherits_rate(self):
        b = AsmBuilder("divchain")
        b.data("arr", 256)
        b.mov(Immediate(0), areg(0))
        b.set_vl(Immediate(128))
        b.vdiv(vreg(0), vreg(1), vreg(2))
        b.vadd(vreg(2), vreg(3), vreg(5))
        result = run_traced(b.build())
        _, add = vector_trace(result)
        # The add consumes at the divide's 4 cycles/element rate.
        assert add.complete - add.first_result == pytest.approx(4 * 128)


class TestRefreshTiming:
    def test_refresh_slows_memory_saturated_loop(self):
        program = chained_chime_program(8)
        with_refresh = run_traced(program, MachineConfig())
        without = run_traced(program, NO_REFRESH)
        assert with_refresh.cycles > without.cycles
        # Roughly the 2% the paper models.
        ratio = with_refresh.cycles / without.cycles
        assert 1.005 < ratio < 1.06


class TestShortVectors:
    def test_overheads_dominate_at_short_vl(self):
        def cpf_at(vl):
            b = AsmBuilder(f"short{vl}")
            data = b.data("arr", 4096)
            b.mov(Immediate(0), areg(0))
            b.mov(Immediate(0), areg(5))
            b.set_vl(Immediate(vl))
            for i in range(4):
                b.vload(b.mem(data, areg(5), 128 * i), vreg(i))
            result = run_traced(b.build())
            return result.cycles / (4 * vl)

        assert cpf_at(8) > 1.5 * cpf_at(128)


class TestRunawayGuard:
    def _forever(self):
        b = AsmBuilder("forever")
        top = b.fresh_label()
        b.label(top)
        b.mov(Immediate(1), sreg(0))
        b.jump(top)
        return b.build()

    def test_max_instructions_enforced(self):
        from repro.errors import BudgetExceededError

        sim = Simulator(self._forever())
        with pytest.raises(BudgetExceededError) as excinfo:
            sim.run(max_instructions=100)
        assert excinfo.value.budget == "instructions"
        assert excinfo.value.limit == 100

    def test_cycle_budget_enforced(self):
        from repro.errors import BudgetExceededError
        from repro.machine import MachineConfig

        sim = Simulator(
            self._forever(), MachineConfig(cycle_budget=50.0)
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            sim.run()
        assert excinfo.value.budget == "cycles"
        assert excinfo.value.limit == 50.0
