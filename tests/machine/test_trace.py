"""Pipeline trace analysis and rendering tests."""

import pytest

from repro.isa import AsmBuilder, Immediate, areg, vreg
from repro.machine import (
    MachineConfig,
    Simulator,
    chime_completion_times,
    render_timeline,
    steady_state_chime_cycles,
    vector_occupancies,
)


@pytest.fixture(scope="module")
def chime_trace():
    b = AsmBuilder("trace")
    data = b.data("arr", 8192)
    b.mov(Immediate(0), areg(0))
    b.mov(Immediate(0), areg(5))
    b.set_vl(Immediate(128))
    for _ in range(6):
        b.vload(b.mem(data, areg(5)), vreg(0))
        b.vadd(vreg(0), vreg(1), vreg(2))
        b.vmul(vreg(2), vreg(3), vreg(5))
        b.add_imm(1024, areg(5))
    sim = Simulator(b.build(), MachineConfig().without_refresh())
    sim.regfile.prime_vectors()
    return sim.run(record_trace=True).trace


class TestOccupancies:
    def test_only_vector_instructions(self, chime_trace):
        occupancies = vector_occupancies(chime_trace)
        assert len(occupancies) == 18  # 6 chimes x 3

    def test_intervals_ordered(self, chime_trace):
        for occ in vector_occupancies(chime_trace):
            assert occ.start <= occ.first_result <= occ.complete

    def test_completion_times_monotone_per_pipe(self, chime_trace):
        completions = chime_completion_times(chime_trace)
        assert completions == sorted(completions)


class TestTimeline:
    def test_renders_rows_for_each_instruction(self, chime_trace):
        entries = [t for t in chime_trace if t.pipe is not None][:6]
        text = render_timeline(entries, width=40)
        assert text.count("\n") == 6  # header + 6 rows
        assert "ld.l" in text and "mul.d" in text

    def test_marks_first_result(self, chime_trace):
        entries = [t for t in chime_trace if t.pipe is not None][:3]
        text = render_timeline(entries, width=60)
        assert "|" in text

    def test_empty_trace(self):
        assert "no vector instructions" in render_timeline([])

    def test_explicit_window(self, chime_trace):
        entries = [t for t in chime_trace if t.pipe is not None][:3]
        text = render_timeline(entries, width=40, start=0.0, end=500.0)
        assert "0..500" in text


class TestSteadyState:
    def test_converges_to_chime_cost(self, chime_trace):
        completions = chime_completion_times(chime_trace)
        steady = steady_state_chime_cycles(completions, 3)
        assert 128.0 <= steady <= 134.0

    def test_requires_two_iterations(self):
        with pytest.raises(ValueError):
            steady_state_chime_cycles([100.0], 1)

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            steady_state_chime_cycles([1.0, 2.0], 0)
