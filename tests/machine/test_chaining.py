"""Vector chaining as a machine parameter.

With chaining disabled a consumer waits for its producer's *last*
element instead of its first, so every vector kernel gets slower (or,
degenerately, no faster) while still computing the right answers; the
chime model mirrors the same switch by composing chimes as
``sum(Z*VL) + sum(B)`` instead of ``max(Z*VL) + sum(B)``.
"""

import pytest

from repro.isa.timing import default_timing_table
from repro.machine.config import DEFAULT_CONFIG
from repro.model import macs_bound
from repro.schedule.chimes import ChimeRules
from repro.workloads import compile_spec, run_kernel, workload

NO_CHAIN = DEFAULT_CONFIG.without_chaining()

VECTOR_KERNELS = ("lfk1", "lfk3", "lfk7", "lfk12")


def test_without_chaining_flips_only_the_flag():
    assert not NO_CHAIN.chaining_enabled
    assert NO_CHAIN.replace(chaining_enabled=True) == DEFAULT_CONFIG


@pytest.mark.parametrize("name", VECTOR_KERNELS)
def test_unchained_runs_verify_and_never_beat_chained(name):
    chained = run_kernel(name, config=DEFAULT_CONFIG, verify=True)
    unchained = run_kernel(name, config=NO_CHAIN, verify=True)
    assert unchained.result.cycles >= chained.result.cycles
    # same code, same work — only the timing moved
    assert unchained.result.flops == chained.result.flops
    assert unchained.result.instructions_executed == \
        chained.result.instructions_executed


def test_dependent_chain_pays_full_stream_latency():
    # lfk1 has load->mul->add->store chains; unchaining them must
    # cost real cycles, not round to zero
    chained = run_kernel("lfk1", config=DEFAULT_CONFIG)
    unchained = run_kernel("lfk1", config=NO_CHAIN)
    assert unchained.result.cycles > chained.result.cycles * 1.5


@pytest.mark.parametrize("fastpath", [True, False],
                         ids=["fastpath", "interpreter"])
def test_fastpath_agrees_with_interpreter_when_unchained(fastpath):
    config = NO_CHAIN if fastpath else NO_CHAIN.without_fastpath()
    run = run_kernel("lfk7", config=config, verify=True)
    reference = run_kernel(
        "lfk7", config=NO_CHAIN.without_fastpath(), verify=True
    )
    assert run.result.cycles == reference.result.cycles


def test_chime_rules_follow_the_machine():
    rules = ChimeRules.for_machine(NO_CHAIN)
    assert not rules.chaining
    assert ChimeRules.for_machine(DEFAULT_CONFIG).chaining


@pytest.mark.parametrize("name", VECTOR_KERNELS)
def test_unchained_bound_dominates_chained_bound(name):
    compiled = compile_spec(workload(name))
    timings = default_timing_table()
    chained = macs_bound(
        compiled.program, rules=ChimeRules.for_machine(DEFAULT_CONFIG)
    )
    unchained = macs_bound(
        compiled.program, vl=NO_CHAIN.max_vl, timings=timings,
        rules=ChimeRules.for_machine(NO_CHAIN),
    )
    assert unchained.cpl > chained.cpl
