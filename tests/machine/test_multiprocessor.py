"""Multiprocessor contention model tests (§4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.isa import parse_program
from repro.machine import (
    DEFAULT_CONFIG,
    WorkloadMix,
    contention_factor_for_load,
    run_under_contention,
)
from repro.machine.simulator import run_program

MEMORY_LOOP = """
.data   a, 512
.data   c, 512
        mov     #0,a0
        mov     #512,s0
        mov     #0,a5
L1:     mov     s0,VL
        ld.l    a+0(a5),v0
        st.l    v0,c+0(a5)
        add.w   #1024,a5
        sub.w   #128,s0
        lt.w    #0,s0
        jbrs.t  L1
"""


class TestContentionFactors:
    def test_idle_is_peak(self):
        assert contention_factor_for_load(WorkloadMix.IDLE) == 1.0

    def test_lockstep_mild(self):
        factor = contention_factor_for_load(WorkloadMix.SAME_EXECUTABLE)
        assert 1.05 <= factor <= 1.15

    def test_saturated_in_paper_band(self):
        """Paper: 56-64 ns effective access under load."""
        factor = contention_factor_for_load(
            WorkloadMix.DIFFERENT_PROGRAMS, 5.1
        )
        assert 56 / 40 <= factor <= 64 / 40

    def test_below_saturation_interpolates(self):
        half = contention_factor_for_load(
            WorkloadMix.DIFFERENT_PROGRAMS, 2.0
        )
        full = contention_factor_for_load(
            WorkloadMix.DIFFERENT_PROGRAMS, 5.1
        )
        assert 1.0 < half < full

    def test_negative_load_rejected(self):
        with pytest.raises(MachineError):
            contention_factor_for_load(WorkloadMix.IDLE, -1.0)


class TestContentionRuns:
    def test_memory_bound_loop_degrades_fully(self):
        program = parse_program(MEMORY_LOOP)
        comparison = run_under_contention(
            program, initial_data={"a": np.ones(512)}
        )
        # A pure-memory loop approaches the raw access-time stretch.
        assert 30.0 < comparison.degradation_percent < 60.0

    def test_idle_mix_no_degradation(self):
        program = parse_program(MEMORY_LOOP)
        comparison = run_under_contention(
            program, mix=WorkloadMix.IDLE,
            initial_data={"a": np.ones(512)},
        )
        assert comparison.degradation_percent == pytest.approx(0.0)

    def test_lockstep_mix_mild_degradation(self):
        program = parse_program(MEMORY_LOOP)
        comparison = run_under_contention(
            program, mix=WorkloadMix.SAME_EXECUTABLE,
            initial_data={"a": np.ones(512)},
        )
        assert 3.0 < comparison.degradation_percent < 15.0


class TestCpuScaling:
    """Contention under 1, 2, and 4 busy neighbour CPUs.

    ``load_average`` counts the other CPUs' runnable processes: below
    the 4-CPU saturation point the memory stretch interpolates
    linearly; at and beyond it, the ports are saturated.
    """

    def test_factor_interpolates_at_1_2_4_cpus(self):
        mix = WorkloadMix.DIFFERENT_PROGRAMS
        # 60 ns saturated access vs 40 ns peak -> +5 ns per busy CPU.
        assert contention_factor_for_load(mix, 1.0) == \
            pytest.approx(45.0 / 40.0)
        assert contention_factor_for_load(mix, 2.0) == \
            pytest.approx(50.0 / 40.0)
        assert contention_factor_for_load(mix, 4.0) == \
            pytest.approx(60.0 / 40.0)

    def test_factor_saturates_beyond_4_cpus(self):
        mix = WorkloadMix.DIFFERENT_PROGRAMS
        saturated = contention_factor_for_load(mix, 4.0)
        assert contention_factor_for_load(mix, 8.0) == saturated
        assert contention_factor_for_load(mix, 100.0) == saturated

    def test_degradation_grows_with_busy_cpus(self):
        program = parse_program(MEMORY_LOOP)
        data = {"a": np.ones(512)}
        degradations = [
            run_under_contention(
                program, load_average=load, initial_data=data
            ).degradation_percent
            for load in (1.0, 2.0, 4.0)
        ]
        assert degradations[0] < degradations[1] < degradations[2]
        # Each loaded run is slower than idle, and even one busy CPU
        # shows measurable contention on a memory-bound loop.
        assert degradations[0] > 1.0

    def test_lockstep_beats_unrelated_programs_at_full_load(self):
        program = parse_program(MEMORY_LOOP)
        data = {"a": np.ones(512)}
        lockstep = run_under_contention(
            program, mix=WorkloadMix.SAME_EXECUTABLE,
            initial_data=data,
        )
        unrelated = run_under_contention(
            program, mix=WorkloadMix.DIFFERENT_PROGRAMS,
            initial_data=data,
        )
        assert lockstep.degradation_percent < \
            unrelated.degradation_percent


class TestSingleCpuMatchesPlainSimulator:
    """Property: the contention model's baseline (and the IDLE mix at
    any load) is exactly the plain simulator — the multiprocessor
    layer must be a pure multiplier, never a second code path."""

    @given(load=st.floats(min_value=0.0, max_value=16.0,
                          allow_nan=False))
    @settings(max_examples=12, deadline=None)
    def test_idle_mix_matches_plain_run_at_any_load(self, load):
        program = parse_program(MEMORY_LOOP)
        data = {"a": np.ones(512)}
        plain = run_program(program, DEFAULT_CONFIG,
                            initial_data=data)
        comparison = run_under_contention(
            program, mix=WorkloadMix.IDLE, load_average=load,
            initial_data=data,
        )
        assert comparison.single.cycles == plain.cycles
        assert comparison.loaded.cycles == plain.cycles
        assert comparison.single.instructions_executed == \
            plain.instructions_executed
        assert comparison.single.flops == plain.flops
        assert comparison.degradation_percent == pytest.approx(0.0)

    @given(
        mix=st.sampled_from(list(WorkloadMix)),
        load=st.floats(min_value=0.0, max_value=16.0,
                       allow_nan=False),
    )
    @settings(max_examples=12, deadline=None)
    def test_baseline_leg_never_sees_contention(self, mix, load):
        program = parse_program(MEMORY_LOOP)
        data = {"a": np.ones(512)}
        plain = run_program(program, DEFAULT_CONFIG,
                            initial_data=data)
        comparison = run_under_contention(
            program, mix=mix, load_average=load, initial_data=data,
        )
        assert comparison.single.cycles == plain.cycles
        # Stretching the stream rate shifts where vector blocks land
        # relative to refresh windows, so under refresh the loaded leg
        # can dodge a stall the idle leg paid — alignment noise, not
        # contention speedup.  Monotonicity is only exact with refresh
        # off; with it on, allow one refresh window of jitter.
        assert comparison.loaded.cycles >= (
            comparison.single.cycles - DEFAULT_CONFIG.refresh_duration
        )
        no_refresh = run_under_contention(
            program, mix=mix, load_average=load,
            config=DEFAULT_CONFIG.without_refresh(), initial_data=data,
        )
        assert no_refresh.loaded.cycles >= no_refresh.single.cycles
