"""Multiprocessor contention model tests (§4.2)."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.isa import parse_program
from repro.machine import (
    WorkloadMix,
    contention_factor_for_load,
    run_under_contention,
)

MEMORY_LOOP = """
.data   a, 512
.data   c, 512
        mov     #0,a0
        mov     #512,s0
        mov     #0,a5
L1:     mov     s0,VL
        ld.l    a+0(a5),v0
        st.l    v0,c+0(a5)
        add.w   #1024,a5
        sub.w   #128,s0
        lt.w    #0,s0
        jbrs.t  L1
"""


class TestContentionFactors:
    def test_idle_is_peak(self):
        assert contention_factor_for_load(WorkloadMix.IDLE) == 1.0

    def test_lockstep_mild(self):
        factor = contention_factor_for_load(WorkloadMix.SAME_EXECUTABLE)
        assert 1.05 <= factor <= 1.15

    def test_saturated_in_paper_band(self):
        """Paper: 56-64 ns effective access under load."""
        factor = contention_factor_for_load(
            WorkloadMix.DIFFERENT_PROGRAMS, 5.1
        )
        assert 56 / 40 <= factor <= 64 / 40

    def test_below_saturation_interpolates(self):
        half = contention_factor_for_load(
            WorkloadMix.DIFFERENT_PROGRAMS, 2.0
        )
        full = contention_factor_for_load(
            WorkloadMix.DIFFERENT_PROGRAMS, 5.1
        )
        assert 1.0 < half < full

    def test_negative_load_rejected(self):
        with pytest.raises(MachineError):
            contention_factor_for_load(WorkloadMix.IDLE, -1.0)


class TestContentionRuns:
    def test_memory_bound_loop_degrades_fully(self):
        program = parse_program(MEMORY_LOOP)
        comparison = run_under_contention(
            program, initial_data={"a": np.ones(512)}
        )
        # A pure-memory loop approaches the raw access-time stretch.
        assert 30.0 < comparison.degradation_percent < 60.0

    def test_idle_mix_no_degradation(self):
        program = parse_program(MEMORY_LOOP)
        comparison = run_under_contention(
            program, mix=WorkloadMix.IDLE,
            initial_data={"a": np.ones(512)},
        )
        assert comparison.degradation_percent == pytest.approx(0.0)

    def test_lockstep_mix_mild_degradation(self):
        program = parse_program(MEMORY_LOOP)
        comparison = run_under_contention(
            program, mix=WorkloadMix.SAME_EXECUTABLE,
            initial_data={"a": np.ones(512)},
        )
        assert 3.0 < comparison.degradation_percent < 15.0
