"""Scalar data cache model tests."""

import pytest

from repro.errors import MachineError
from repro.machine import MachineConfig, ScalarCache
from repro.machine.cache import CacheStats
from repro.workloads import kernel, run_kernel, compile_spec


class TestCacheMechanics:
    def test_miss_then_hit(self):
        cache = ScalarCache(lines=4, line_words=2)
        assert not cache.load(10)
        assert cache.load(10)
        assert cache.load(11)  # same line
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_direct_mapped_conflict(self):
        cache = ScalarCache(lines=4, line_words=1)
        assert not cache.load(0)
        assert not cache.load(4)   # evicts word 0
        assert not cache.load(0)   # miss again

    def test_store_does_not_allocate(self):
        cache = ScalarCache(lines=4, line_words=1)
        cache.store(3)
        assert not cache.load(3)

    def test_invalidate(self):
        cache = ScalarCache(lines=4, line_words=1)
        cache.load(1)
        cache.invalidate()
        assert not cache.load(1)

    def test_geometry_validated(self):
        with pytest.raises(MachineError):
            ScalarCache(lines=3, line_words=1)
        with pytest.raises(MachineError):
            ScalarCache(lines=0, line_words=2)

    def test_stats_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0


class TestCacheConfig:
    def test_disabled_by_default(self):
        assert not MachineConfig().scalar_cache_enabled

    def test_with_scalar_cache(self):
        config = MachineConfig().with_scalar_cache(
            scalar_cache_hit_latency=1
        )
        assert config.scalar_cache_enabled
        assert config.scalar_cache_hit_latency == 1

    def test_latency_ordering_validated(self):
        with pytest.raises(MachineError):
            MachineConfig(
                scalar_cache_hit_latency=10,
                scalar_cache_miss_latency=5,
            )


class TestCacheInSimulation:
    def test_stats_absent_when_disabled(self):
        run = run_kernel("lfk8")
        assert run.result.scalar_cache is None

    def test_stats_present_when_enabled(self):
        run = run_kernel(
            "lfk8", config=MachineConfig().with_scalar_cache()
        )
        stats = run.result.scalar_cache
        assert stats is not None
        # Loads consult the cache; stores are write-through-no-allocate
        # and are not counted, so accesses <= all scalar memory ops.
        assert 0 < stats.accesses <= run.result.scalar_memory_ops

    def test_spilled_constants_hit_after_first_touch(self):
        """LFK8's in-loop constant reloads re-read the same words."""
        run = run_kernel(
            "lfk8", config=MachineConfig().with_scalar_cache()
        )
        assert run.result.scalar_cache.hit_rate > 0.7

    def test_results_unchanged_functionally(self):
        spec = kernel("lfk2")
        compiled = compile_spec(spec)
        run = run_kernel(
            spec, compiled=compiled,
            config=MachineConfig().with_scalar_cache(),
        )
        run.verify()

    def test_locality_speeds_up_scalar_heavy_kernels(self):
        """LFK2's outer scalar code hits the cache: modest speedup."""
        spec = kernel("lfk2")
        compiled = compile_spec(spec)
        flat = run_kernel(spec, compiled=compiled)
        cached = run_kernel(
            spec, compiled=compiled,
            config=MachineConfig().with_scalar_cache(),
        )
        assert cached.cycles < flat.cycles
