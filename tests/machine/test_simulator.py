"""End-to-end simulator tests on small hand-written programs."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa import parse_program
from repro.machine import Simulator, run_program

VECTOR_TRIAD = """
.data   a, 512
.data   b, 512
.data   c, 512
        mov     #0,a0
        mov     #300,s0
        mov     #0,a5
L1:     mov     s0,VL
        ld.l    a+0(a5),v0
        ld.l    b+0(a5),v1
        mul.d   v0,v1,v2
        st.l    v2,c+0(a5)
        add.w   #1024,a5
        sub.w   #128,s0
        lt.w    #0,s0
        jbrs.t  L1
"""


class TestFunctionalExecution:
    def test_triad_values(self):
        program = parse_program(VECTOR_TRIAD, name="triad")
        sim = Simulator(program)
        a = np.linspace(1.0, 2.0, 300)
        b = np.linspace(3.0, 4.0, 300)
        sim.load_symbol("a", a)
        sim.load_symbol("b", b)
        result = sim.run()
        assert np.allclose(sim.dump_symbol("c", 300), a * b)
        assert result.flops == 300

    def test_partial_strip_handled(self):
        """300 = 2 full strips + one 44-element strip."""
        program = parse_program(VECTOR_TRIAD)
        sim = Simulator(program)
        sim.load_symbol("a", np.ones(300))
        sim.load_symbol("b", np.full(300, 2.0))
        sim.run()
        c = sim.dump_symbol("c", 300)
        assert np.all(c == 2.0)

    def test_counters(self):
        program = parse_program(VECTOR_TRIAD)
        sim = Simulator(program)
        sim.load_symbol("a", np.ones(300))
        sim.load_symbol("b", np.ones(300))
        result = sim.run()
        assert result.vector_instructions == 4 * 3  # 3 strips
        assert result.vector_memory_ops == 3 * 3
        assert result.scalar_memory_ops == 0
        assert result.instructions_executed == 3 + 9 * 3

    def test_run_program_convenience(self):
        result = run_program(
            parse_program(VECTOR_TRIAD),
            initial_data={"a": np.ones(300), "b": np.ones(300)},
        )
        assert result.cycles > 0

    def test_load_symbol_overflow_rejected(self):
        sim = Simulator(parse_program(VECTOR_TRIAD))
        with pytest.raises(SimulationError):
            sim.load_symbol("a", np.zeros(1024))

    def test_mflops_property(self):
        result = run_program(
            parse_program(VECTOR_TRIAD),
            initial_data={"a": np.ones(300), "b": np.ones(300)},
        )
        # 300 flops in `cycles` 40ns cycles.
        expected = 300 / (result.cycles * 40e-9) / 1e6
        assert result.mflops == pytest.approx(expected)

    def test_cycles_per_flop(self):
        result = run_program(
            parse_program(VECTOR_TRIAD),
            initial_data={"a": np.ones(300), "b": np.ones(300)},
        )
        assert result.cycles_per_flop() == pytest.approx(
            result.cycles / 300
        )


class TestTimingSanity:
    def test_cycles_scale_with_work(self):
        short = VECTOR_TRIAD.replace("#300", "#128")
        long = VECTOR_TRIAD.replace("#300", "#1280")
        r_short = run_program(
            parse_program(short),
            initial_data={"a": np.ones(512), "b": np.ones(512)},
        )
        r_long = run_program(
            parse_program(long.replace(".data   a, 512", ".data   a, 1280")
                          .replace(".data   b, 512", ".data   b, 1280")
                          .replace(".data   c, 512", ".data   c, 1280")),
            initial_data={"a": np.ones(1280), "b": np.ones(1280)},
        )
        ratio = r_long.cycles / r_short.cycles
        assert 8.0 < ratio < 12.0  # ~10 strips vs 1

    def test_trace_recorded_only_on_request(self):
        program = parse_program(VECTOR_TRIAD)
        sim = Simulator(program)
        sim.load_symbol("a", np.ones(300))
        sim.load_symbol("b", np.ones(300))
        assert sim.run().trace == []

    def test_memory_bound_loop_near_port_limit(self):
        """Three memory streams of 300 elements need >= 900 cycles."""
        result = run_program(
            parse_program(VECTOR_TRIAD),
            initial_data={"a": np.ones(300), "b": np.ones(300)},
        )
        assert result.cycles >= 900
        assert result.cycles < 1300  # but within ~40% of the port bound
