"""Functional (value-level) instruction semantics tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa import (
    AsmBuilder,
    Immediate,
    Instruction,
    LabelRef,
    MemRef,
    areg,
    sreg,
    vreg,
    VL,
)
from repro.isa.program import DataLayout
from repro.machine import MachineConfig, MemorySystem, RegisterFile
from repro.machine.semantics import effective_address, execute_instruction


@pytest.fixture
def env():
    layout = DataLayout()
    layout.allocate("x", 64)
    memory = MemorySystem(64, MachineConfig())
    regfile = RegisterFile()
    return regfile, memory, layout


def run(instr, env):
    regfile, memory, layout = env
    return execute_instruction(instr, regfile, memory, layout)


class TestScalarOps:
    def test_mov_immediate(self, env):
        regfile, *_ = env
        run(Instruction("mov", (Immediate(42), sreg(0)), suffix="w"), env)
        assert regfile.read(sreg(0)) == 42.0

    def test_mov_to_vl_clamps(self, env):
        regfile, *_ = env
        run(Instruction("mov", (Immediate(500), VL), suffix="w"), env)
        assert regfile.vl == 128
        run(Instruction("mov", (Immediate(-3), VL), suffix="w"), env)
        assert regfile.vl == 0

    def test_accumulate_add(self, env):
        regfile, *_ = env
        regfile.write(areg(5), 100)
        run(Instruction("add", (Immediate(24), areg(5)), suffix="w"), env)
        assert regfile.read(areg(5)) == 124

    def test_accumulate_sub_order(self, env):
        regfile, *_ = env
        regfile.write(sreg(0), 10.0)
        run(Instruction("sub", (Immediate(3), sreg(0)), suffix="w"), env)
        assert regfile.read(sreg(0)) == 7.0  # dst := dst - src

    def test_accumulate_div_order(self, env):
        regfile, *_ = env
        regfile.write(sreg(0), 12.0)
        run(Instruction("div", (Immediate(4), sreg(0)), suffix="d"), env)
        assert regfile.read(sreg(0)) == 3.0

    def test_integer_division_truncates(self, env):
        regfile, *_ = env
        regfile.write(areg(1), 101)
        run(Instruction("div", (Immediate(2), areg(1)), suffix="w"), env)
        assert regfile.read(areg(1)) == 50

    def test_three_operand_sub(self, env):
        regfile, *_ = env
        regfile.write(sreg(1), 10.0)
        regfile.write(sreg(2), 4.0)
        run(
            Instruction("sub", (sreg(1), sreg(2), sreg(3)), suffix="d"),
            env,
        )
        assert regfile.read(sreg(3)) == 6.0

    def test_scalar_neg(self, env):
        regfile, *_ = env
        regfile.write(sreg(1), 2.5)
        run(Instruction("neg", (sreg(1), sreg(2)), suffix="d"), env)
        assert regfile.read(sreg(2)) == -2.5


class TestCompareBranch:
    def test_lt_sets_flag(self, env):
        regfile, *_ = env
        regfile.write(sreg(0), 5.0)
        run(Instruction("lt", (Immediate(0), sreg(0)), suffix="w"), env)
        assert regfile.flag is True
        run(Instruction("lt", (sreg(0), Immediate(0)), suffix="w"), env)
        assert regfile.flag is False

    def test_branch_senses(self, env):
        regfile, *_ = env
        regfile.flag = True
        taken = run(
            Instruction("jbrs", (LabelRef("L"),), suffix="t"), env
        )
        assert taken == "L"
        not_taken = run(
            Instruction("jbrs", (LabelRef("L"),), suffix="f"), env
        )
        assert not_taken is None

    def test_unconditional_jump(self, env):
        assert run(Instruction("jbr", (LabelRef("X"),)), env) == "X"


class TestMemoryOps:
    def test_scalar_load_store(self, env):
        regfile, memory, layout = env
        memory.write_word(16, 9.0)
        run(
            Instruction(
                "ld", (MemRef(areg(0), 16), sreg(2)), suffix="l"
            ),
            env,
        )
        assert regfile.read(sreg(2)) == 9.0
        run(
            Instruction(
                "st", (sreg(2), MemRef(areg(0), 24)), suffix="l"
            ),
            env,
        )
        assert memory.read_word(24) == 9.0

    def test_symbol_resolution(self, env):
        regfile, memory, layout = env
        mem = MemRef(areg(0), 8, "x")
        assert effective_address(mem, regfile, layout) == 8

    def test_vector_load_uses_vl(self, env):
        regfile, memory, layout = env
        memory.load_array(0, np.arange(64, dtype=float))
        regfile.vl = 4
        run(Instruction("ld", (MemRef(areg(0)), vreg(0)), suffix="l"),
            env)
        assert list(regfile.read_vector(vreg(0))) == [0, 1, 2, 3]

    def test_strided_vector_store(self, env):
        regfile, memory, layout = env
        regfile.vl = 3
        regfile.write_vector(vreg(1), np.array([7.0, 8.0, 9.0]))
        run(
            Instruction(
                "st",
                (vreg(1), MemRef(areg(0), 0, None, 2)),
                suffix="l",
            ),
            env,
        )
        assert memory.read_word(0) == 7.0
        assert memory.read_word(16) == 8.0
        assert memory.read_word(32) == 9.0


class TestVectorArithmetic:
    def test_vector_add(self, env):
        regfile, *_ = env
        regfile.vl = 4
        regfile.write_vector(vreg(0), np.array([1.0, 2, 3, 4]))
        regfile.write_vector(vreg(1), np.array([10.0, 20, 30, 40]))
        run(Instruction("add", (vreg(0), vreg(1), vreg(2)), suffix="d"),
            env)
        assert list(regfile.read_vector(vreg(2))) == [11, 22, 33, 44]

    def test_vector_scalar_broadcast(self, env):
        regfile, *_ = env
        regfile.vl = 3
        regfile.write(sreg(1), 2.0)
        regfile.write_vector(vreg(0), np.array([1.0, 2, 3]))
        run(Instruction("mul", (sreg(1), vreg(0), vreg(2)), suffix="d"),
            env)
        assert list(regfile.read_vector(vreg(2))) == [2, 4, 6]

    def test_vector_neg(self, env):
        regfile, *_ = env
        regfile.vl = 2
        regfile.write_vector(vreg(0), np.array([1.0, -2.0]))
        run(Instruction("neg", (vreg(0), vreg(3)), suffix="d"), env)
        assert list(regfile.read_vector(vreg(3))) == [-1.0, 2.0]

    def test_sum_reduction(self, env):
        regfile, *_ = env
        regfile.vl = 5
        regfile.write_vector(vreg(0), np.arange(5, dtype=float))
        run(Instruction("sum", (vreg(0), sreg(3)), suffix="d"), env)
        assert regfile.read(sreg(3)) == 10.0

    def test_sum_respects_vl(self, env):
        regfile, *_ = env
        regfile.vl = 128
        regfile.write_vector(vreg(0), np.ones(128))
        regfile.vl = 3
        run(Instruction("sum", (vreg(0), sreg(3)), suffix="d"), env)
        assert regfile.read(sreg(3)) == 3.0


class TestRegisterFile:
    def test_vector_write_length_checked(self):
        regfile = RegisterFile()
        regfile.vl = 4
        with pytest.raises(SimulationError):
            regfile.write_vector(vreg(0), np.zeros(3))

    def test_prime_vectors_distinct_nonzero(self):
        regfile = RegisterFile()
        regfile.prime_vectors()
        values = {regfile.v[i, 0] for i in range(8)}
        assert len(values) == 8
        assert all(v != 0 for v in values)
