"""Steady-state fast path: cycle-exactness and cache behavior.

The fast path must be an *observationally invisible* optimization: for
every program and machine configuration, a run with the fast path armed
must produce bit-for-bit the same cycle count, instruction counters,
memory image, and register file as the plain interpreter.  These tests
check that differentially over the ten case-study kernels and a batch
of randomly generated loops, across the configurations that exercise
different engine modes (analytic shift, timing replay, scalar cache,
odd maximum vector lengths).
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.machine import DEFAULT_CONFIG, Simulator
from repro.workloads import (
    CASE_STUDY_KERNELS,
    clear_caches,
    compile_spec,
    generate_loop,
    kernel,
    prepare_simulator,
    run_kernel,
)

CONFIGS = {
    "default": DEFAULT_CONFIG,
    "norefresh": DEFAULT_CONFIG.without_refresh(),
    "scalar-cache": DEFAULT_CONFIG.with_scalar_cache(),
    "vl99": DEFAULT_CONFIG.replace(max_vl=99),
    "vl1": DEFAULT_CONFIG.replace(max_vl=1),
}

COUNTERS = (
    "instructions_executed",
    "vector_instructions",
    "scalar_instructions",
    "vector_memory_ops",
    "scalar_memory_ops",
    "flops",
)


def assert_identical(fast_sim, fast_result, slow_sim, slow_result):
    """Fast-path and interpreter runs must be indistinguishable."""
    assert fast_result.cycles == slow_result.cycles
    for name in COUNTERS:
        assert getattr(fast_result, name) == getattr(slow_result, name), name
    np.testing.assert_array_equal(
        fast_sim.memory.dump_array(0, fast_sim.memory.size_words),
        slow_sim.memory.dump_array(0, slow_sim.memory.size_words),
    )
    np.testing.assert_array_equal(fast_sim.regfile.a, slow_sim.regfile.a)
    np.testing.assert_array_equal(fast_sim.regfile.s, slow_sim.regfile.s)
    np.testing.assert_array_equal(fast_sim.regfile.v, slow_sim.regfile.v)
    assert fast_sim.regfile.vl == slow_sim.regfile.vl
    assert fast_sim.regfile.vs == slow_sim.regfile.vs


def run_spec(spec, config):
    compiled = compile_spec(spec)
    sim = prepare_simulator(spec, compiled, config)
    return sim, sim.run()


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("spec", CASE_STUDY_KERNELS, ids=lambda s: s.name)
class TestCaseStudyKernels:
    def test_cycle_exact(self, spec, config_name):
        config = CONFIGS[config_name]
        fast_sim, fast = run_spec(spec, config)
        slow_sim, slow = run_spec(spec, config.without_fastpath())
        assert fast.fastpath is not None
        assert slow.fastpath is None
        assert_identical(fast_sim, fast, slow_sim, slow)


class TestEngagement:
    def test_lfk1_engages_and_skips(self):
        _, result = run_spec(kernel("lfk1"), DEFAULT_CONFIG)
        stats = result.fastpath
        assert stats.loops_detected >= 1
        assert stats.engagements >= 1
        assert stats.iterations_skipped > 0
        assert stats.instructions_skipped > 0

    def test_analytic_mode_without_refresh(self):
        # with refresh off and no scalar cache, steady state is provable
        # from the clock fingerprint and the skip is a pure shift
        _, result = run_spec(kernel("lfk1"), DEFAULT_CONFIG.without_refresh())
        assert result.fastpath.analytic_engagements >= 1

    def test_replay_mode_with_refresh(self):
        # refresh makes memory timing phase-dependent, so the engine
        # must fall back to replaying the timing model
        _, result = run_spec(kernel("lfk1"), DEFAULT_CONFIG)
        stats = result.fastpath
        assert stats.analytic_engagements == 0
        assert stats.replay_engagements >= 1

    def test_disabled_by_config(self):
        config = DEFAULT_CONFIG.without_fastpath()
        assert config.fastpath is False
        _, result = run_spec(kernel("lfk1"), config)
        assert result.fastpath is None

    def test_trace_recording_disables_fastpath(self):
        spec = kernel("lfk1")
        compiled = compile_spec(spec)
        sim = prepare_simulator(spec, compiled, DEFAULT_CONFIG)
        result = sim.run(record_trace=True)
        assert result.fastpath is None
        assert result.trace


def run_generated_pair(seed, config, n=None):
    generated = generate_loop(seed, n=n)
    compiled = compile_kernel(generated.source, f"g{seed}")
    sims = []
    results = []
    for cfg in (config, config.without_fastpath()):
        sim = Simulator(compiled.program, cfg)
        data = generated.make_data(random.Random(1234))
        for name, values in compiled.initial_data(data).items():
            sim.load_symbol(name, values)
        sim.memory.load_array(
            compiled.scalar_word_offset("n"),
            np.asarray([float(generated.n)]),
        )
        for name, value in generated.scalars.items():
            sim.memory.load_array(
                compiled.scalar_word_offset(name), np.asarray([value])
            )
        sims.append(sim)
        results.append(sim.run())
    return sims, results


class TestGeneratedLoops:
    @pytest.mark.parametrize("seed", range(8))
    def test_default_sizes(self, seed):
        sims, results = run_generated_pair(seed, DEFAULT_CONFIG)
        assert_identical(sims[0], results[0], sims[1], results[1])

    @pytest.mark.parametrize("config_name", ["default", "norefresh",
                                             "scalar-cache", "vl99"])
    def test_long_loops_engage(self, config_name):
        # n large enough for several identical full-VL strips, so the
        # engine engages; exactness must hold through the skips
        config = CONFIGS[config_name]
        engagements = 0
        for seed in (0, 3, 5):
            sims, results = run_generated_pair(seed, config, n=1500)
            assert_identical(sims[0], results[0], sims[1], results[1])
            engagements += results[0].fastpath.engagements
        assert engagements > 0


class TestRunnerCaches:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_compile_spec_memoized(self):
        spec = kernel("lfk1")
        assert compile_spec(spec) is compile_spec(spec)

    def test_compile_cache_distinguishes_specs(self):
        assert compile_spec(kernel("lfk1")) is not compile_spec(
            kernel("lfk2")
        )

    def test_run_kernel_memoized(self):
        spec = kernel("lfk1")
        assert run_kernel(spec) is run_kernel(spec)

    def test_run_cache_distinguishes_configs(self):
        spec = kernel("lfk1")
        base = run_kernel(spec)
        assert run_kernel(spec, config=DEFAULT_CONFIG.without_refresh()) \
            is not base

    def test_cached_run_matches_fresh_run(self):
        spec = kernel("lfk3")
        cached = run_kernel(spec)
        clear_caches()
        fresh = run_kernel(spec)
        assert cached is not fresh
        assert cached.result.cycles == fresh.result.cycles

    def test_clear_caches_resets(self):
        spec = kernel("lfk1")
        first = run_kernel(spec)
        clear_caches()
        assert run_kernel(spec) is not first

    def test_explicit_compiled_bypasses_run_cache(self):
        spec = kernel("lfk1")
        compiled = compile_spec(spec)
        first = run_kernel(spec, compiled=compiled)
        second = run_kernel(spec, compiled=compiled)
        assert first is not second

    def test_verify_upgrades_cached_entry(self):
        spec = kernel("lfk1")
        run_kernel(spec, verify=False)
        # the cached run is re-verified on demand, not re-simulated
        assert run_kernel(spec, verify=True) is run_kernel(spec)

    def test_clear_caches_resets_analysis_memo(self):
        from repro import analysis

        program = compile_spec(kernel("lfk1")).program
        first = analysis.analyze_program(program)
        assert analysis.analysis_cache_size() >= 1
        assert analysis.analyze_program(program) is first
        clear_caches()
        assert analysis.analysis_cache_size() == 0
        assert analysis.analyze_program(program) is not first

    def test_sized_variants_not_conflated(self):
        base = kernel("lfk1")
        small = dataclasses.replace(
            base,
            scalar_inputs={**base.scalar_inputs, "n": 64},
            inner_iterations=64,
            trip_profile=(64,),
        )
        assert run_kernel(base).result.cycles \
            != run_kernel(small).result.cycles
