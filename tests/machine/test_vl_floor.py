"""§3.2 VL-threshold mechanism: "run time no longer improves when VL
drops below some operation-specific threshold"."""

import pytest

from repro.errors import IsaError
from repro.isa import AsmBuilder, Immediate, VectorTiming, areg, vreg
from repro.isa.timing import default_timing_table
from repro.machine import MachineConfig, Simulator
from repro.schedule import partition_chimes


class TestTimingFloor:
    def test_default_no_floor(self):
        load = default_timing_table().lookup("load")
        assert load.vl_floor == 0
        assert load.effective_vl(5) == 5

    def test_floor_clamps_short_vectors(self):
        timing = VectorTiming("load", 2, 10, 1.0, 2, vl_floor=16)
        assert timing.effective_vl(5) == 16
        assert timing.effective_vl(64) == 64
        assert timing.isolated_cycles(5) == 2 + 10 + 16

    def test_table_with_floor(self):
        table = default_timing_table().with_vl_floor(16)
        assert all(
            table.lookup(k).vl_floor == 16 for k in table.keys()
        )

    def test_negative_floor_rejected(self):
        with pytest.raises(IsaError):
            default_timing_table().with_vl_floor(-1)

    def test_floor_preserved_by_bubble_ablation(self):
        table = default_timing_table().with_vl_floor(8)
        assert table.without_bubbles().lookup("load").vl_floor == 8


class TestFloorInBoundsAndSimulator:
    def make_loop(self, vl):
        b = AsmBuilder("floor")
        data = b.data("arr", 2048)
        b.mov(Immediate(0), areg(0))
        b.mov(Immediate(0), areg(5))
        b.set_vl(Immediate(vl))
        for i in range(4):
            b.vload(b.mem(data, areg(5), 128 * i), vreg(i))
        return b.build()

    def test_chime_cost_floors(self):
        body = [
            i for i in self.make_loop(4) if i.is_vector
        ]
        partition = partition_chimes(body)
        floored = default_timing_table().with_vl_floor(32)
        plain = partition.total_cycles(4, default_timing_table())
        clamped = partition.total_cycles(4, floored)
        assert clamped > plain
        assert clamped == partition.total_cycles(32, floored)

    def test_simulator_run_time_stops_improving(self):
        floored = MachineConfig(
            timings=default_timing_table().with_vl_floor(32)
        ).without_refresh()

        def cycles(vl):
            sim = Simulator(self.make_loop(vl), floored)
            return sim.run().cycles

        assert cycles(4) == cycles(16) == cycles(32)
        assert cycles(64) > cycles(32)

    def test_functional_results_unaffected(self):
        """The floor is a timing effect only: VL elements move."""
        import numpy as np

        floored = MachineConfig(
            timings=default_timing_table().with_vl_floor(32)
        )
        program = self.make_loop(4)
        sim = Simulator(program, floored)
        sim.load_symbol("arr", np.arange(2048, dtype=float))
        sim.run()
        assert list(sim.regfile.v[0, :4]) == [0.0, 1.0, 2.0, 3.0]
        assert sim.regfile.v[0, 4] == 0.0  # untouched beyond VL