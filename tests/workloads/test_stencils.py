"""Generalization-family tests: the MACS methodology on non-LFK loops.

The paper's conclusion claims the approach generalizes; these tests run
the *entire* pipeline (compile → bounds → simulate → A/X → advisor) on
five stencil/BLAS kernels the models were never tuned against.
"""

import pytest

from repro.model import analyze_kernel, extended_macs_bound
from repro.model.advisor import advise
from repro.workloads import STENCIL_KERNELS, run_kernel


@pytest.fixture(scope="module")
def stencil_analyses():
    return {
        spec.name: analyze_kernel(spec) for spec in STENCIL_KERNELS
    }


@pytest.mark.parametrize(
    "spec", STENCIL_KERNELS, ids=lambda s: s.name
)
class TestStencilFamily:
    def test_functionally_correct(self, spec):
        run_kernel(spec, verify=True)

    def test_ma_counts_match_spec(self, spec, stencil_analyses):
        analysis = stencil_analyses[spec.name]
        counts = analysis.ma.counts
        assert counts.f_add == spec.ma.f_add
        assert counts.f_mul == spec.ma.f_mul
        assert counts.loads == spec.ma.loads
        assert counts.stores == spec.ma.stores

    def test_hierarchy_monotone(self, spec, stencil_analyses):
        analysis = stencil_analyses[spec.name]
        assert analysis.ma.cpl <= analysis.mac.cpl <= \
            analysis.macs.cpl <= analysis.t_p_cpl + 1e-9

    def test_macs_explains_most_of_runtime(self, spec,
                                           stencil_analyses):
        """Long single-entry loops: the steady-state bound applies."""
        analysis = stencil_analyses[spec.name]
        assert analysis.percent_explained("macs") >= 88.0

    def test_eq18_bracket(self, spec, stencil_analyses):
        analysis = stencil_analyses[spec.name]
        assert analysis.t_p_cpl >= \
            analysis.ax.overlap_lower_bound() - 1e-9

    def test_extended_macs_applies(self, spec, stencil_analyses):
        analysis = stencil_analyses[spec.name]
        extended = extended_macs_bound(
            analysis.compiled, spec.trip_profile
        )
        assert extended.cpl <= analysis.t_p_cpl * 1.02


class TestSpecificShapes:
    def test_heat1d_compiler_reloads_stencil(self, stencil_analyses):
        """The 3-point stencil reloads U three times: MA 1 -> MAC 3."""
        analysis = stencil_analyses["heat1d"]
        assert analysis.ma.counts.loads == 1
        assert analysis.mac.counts.loads == 3

    def test_daxpy_no_compiler_gap(self, stencil_analyses):
        """Distinct streams: nothing to reuse, MA == MAC."""
        analysis = stencil_analyses["daxpy"]
        assert analysis.compiler_gap_cpl() == pytest.approx(0.0)

    def test_tridiag_memory_saturated(self, stencil_analyses):
        analysis = stencil_analyses["tridiag_rhs"]
        assert analysis.ma.memory_bound
        assert analysis.mac.t_m == 7.0  # 6 loads + 1 store compiled

    def test_sdot_uses_partial_sums(self, stencil_analyses):
        plan = stencil_analyses["sdot_long"].compiled \
            .innermost_vector_plan()
        assert plan.ir.reduction.style == "partial-sums"

    def test_advisor_flags_heat1d_reloads(self, stencil_analyses):
        items = advise(stencil_analyses["heat1d"])
        assert any("reload" in a.summary for a in items)

    def test_wave1d_cse_on_repeated_read(self, stencil_analyses):
        """U(k) appears twice in the source; compiled loads it once
        per distinct offset (3 U loads + 1 UP load)."""
        analysis = stencil_analyses["wave1d"]
        assert analysis.mac.counts.loads == 4
