"""Kernel spec and functional-correctness tests for all ten LFKs."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    CASE_STUDY_KERNELS,
    kernel,
    kernel_names,
    run_kernel,
)


class TestRegistry:
    def test_ten_kernels(self):
        assert len(CASE_STUDY_KERNELS) == 10
        assert [s.number for s in CASE_STUDY_KERNELS] == [
            1, 2, 3, 4, 6, 7, 8, 9, 10, 12,
        ]

    def test_lookup_by_name_and_number(self):
        assert kernel("lfk8") is kernel(8)
        assert kernel("LFK8") is kernel(8)

    def test_unknown_kernel(self):
        with pytest.raises(WorkloadError):
            kernel("lfk5")
        with pytest.raises(WorkloadError):
            kernel(99)

    def test_names(self):
        assert "lfk1" in kernel_names()


@pytest.mark.parametrize(
    "spec", CASE_STUDY_KERNELS, ids=lambda s: s.name
)
class TestFunctionalCorrectness:
    def test_outputs_match_reference(self, spec, kernel_runs):
        kernel_runs[spec.name].verify()  # raises on mismatch

    def test_vectorized(self, spec, compiled_kernels):
        compiled = compiled_kernels[spec.name]
        assert compiled.vectorized_loops, (
            f"{spec.name} failed to vectorize: "
            f"{[p.reason for p in compiled.loops]}"
        )

    def test_flop_accounting(self, spec, kernel_runs):
        result = kernel_runs[spec.name].result
        # Reduction kernels execute a few extra fp ops outside the
        # source accounting (the final sum.d over a full register).
        assert spec.total_flops <= result.flops <= spec.total_flops + 256

    def test_cpl_cpf_consistent(self, spec, kernel_runs):
        run = kernel_runs[spec.name]
        assert run.cpf() == pytest.approx(
            run.cpl() / spec.flops_per_iteration
        )


class TestSpecificBehaviours:
    def test_lfk2_pass_structure(self, kernel_runs):
        """The halving loop executes 6 vector-loop entries."""
        run = kernel_runs["lfk2"]
        # 97 inner iterations over passes of 50,25,12,6,3,1.
        assert run.spec.inner_iterations == 97

    def test_lfk3_reduction_value(self, kernel_runs):
        run = kernel_runs["lfk3"]
        assert isinstance(run.outputs["Q"], float)
        assert run.outputs["Q"] != 0.0

    def test_lfk6_triangular_iterations(self):
        spec = kernel("lfk6")
        assert spec.inner_iterations == sum(range(1, 64))

    def test_lfk8_scalar_constant_spills(self, compiled_kernels):
        """Eleven FP constants overflow the s-file: in-loop reloads."""
        compiled = compiled_kernels["lfk8"]
        start, end = compiled.program.innermost_loop()
        body = compiled.program.loop_slice((start, end))
        scalar_loads = [i for i in body if i.is_scalar_memory]
        assert len(scalar_loads) >= 3

    def test_lfk9_no_scalar_spills(self, compiled_kernels):
        """Eight constants just fit: no in-loop scalar loads."""
        compiled = compiled_kernels["lfk9"]
        start, end = compiled.program.innermost_loop()
        body = compiled.program.loop_slice((start, end))
        assert not any(i.is_scalar_memory for i in body)

    def test_lfk10_register_pressure_no_spills(self, compiled_kernels):
        plan = compiled_kernels["lfk10"].innermost_vector_plan()
        assert plan.allocation.spill_slots_used == 0

    def test_lfk2_stride_two_loads(self, compiled_kernels):
        plan = compiled_kernels["lfk2"].innermost_vector_plan()
        strides = {
            s.stride_words for s in plan.ir.streams if not s.is_store
        }
        assert strides == {2}

    def test_lfk6_negative_stride_load(self, compiled_kernels):
        plan = compiled_kernels["lfk6"].innermost_vector_plan()
        strides = {s.stride_words for s in plan.ir.streams}
        assert -1 in strides

    def test_make_data_unknown_array_rejected(self):
        with pytest.raises(WorkloadError):
            kernel("lfk1").make_data({"Y": 10})


class TestRunnerEdgeCases:
    def test_reuse_compiled(self, compiled_kernels):
        run = run_kernel("lfk12", compiled=compiled_kernels["lfk12"])
        assert run.cycles > 0

    def test_verify_rejected_for_inexact_compilation(self):
        from repro.compiler import DEFAULT_OPTIONS

        run = run_kernel(
            "lfk1",
            options=DEFAULT_OPTIONS.replace(reuse_shifted_loads=True),
        )
        with pytest.raises(WorkloadError):
            run.verify()

    def test_cycles_per_vector_iteration(self, kernel_runs):
        run = kernel_runs["lfk1"]
        assert run.cycles_per_vector_iteration() == pytest.approx(
            run.cpl() * 128
        )
