"""Tests for LFK 5 and 11 — the recurrences the paper excluded."""

import pytest

from repro.workloads import EXCLUDED_KERNELS, compile_spec, run_kernel
from repro.workloads.extra import LFK5, LFK11


@pytest.fixture(scope="module")
def excluded_runs():
    runs = {}
    for spec in EXCLUDED_KERNELS:
        runs[spec.name] = run_kernel(spec, verify=True)
    return runs


class TestRejection:
    @pytest.mark.parametrize(
        "spec", EXCLUDED_KERNELS, ids=lambda s: s.name
    )
    def test_vectorization_rejected_as_recurrence(self, spec):
        compiled = compile_spec(spec)
        plan = compiled.loops[0]
        assert not plan.vectorized
        assert "recurrence" in plan.reason

    @pytest.mark.parametrize(
        "spec", EXCLUDED_KERNELS, ids=lambda s: s.name
    )
    def test_ivdep_would_not_be_claimed(self, spec):
        """The rejection is a *proven* dependence, not an unknown."""
        assert "unknown" not in compile_spec(spec).loops[0].reason


class TestScalarFallbackCorrectness:
    def test_lfk5_matches_serial_reference(self, excluded_runs):
        excluded_runs["lfk5"].verify()

    def test_lfk11_prefix_sum(self, excluded_runs):
        excluded_runs["lfk11"].verify()

    def test_no_vector_instructions_executed(self, excluded_runs):
        for run in excluded_runs.values():
            assert run.result.vector_instructions == 0


class TestWhyThePaperSkippedThem:
    def test_order_of_magnitude_slower_than_vector_kernels(
        self, excluded_runs, kernel_runs
    ):
        vector_worst = max(r.cpf() for r in kernel_runs.values())
        for run in excluded_runs.values():
            assert run.cpf() > 3.0 * vector_worst

    def test_specs_well_formed(self):
        assert LFK5.number == 5 and LFK11.number == 11
        for spec in EXCLUDED_KERNELS:
            assert sum(spec.trip_profile) == spec.inner_iterations
