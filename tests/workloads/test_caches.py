"""Cache lifecycle regressions.

``clear_caches()`` must wipe every process-wide memo *and* the sweep
telemetry collector, and forked sweep workers must start cold — a
child inheriting the parent's run cache would report ``cached``
statuses for cells it never simulated, and an inherited telemetry
collector would write to the parent's trace file descriptor.
"""

import os

from repro.sweep import telemetry
from repro.workloads import clear_caches, run_kernel, workload
from repro.workloads import runner


def warm_caches():
    run_kernel(workload("lfk12"))
    assert runner._COMPILE_CACHE and runner._RUN_CACHE


class TestClearCaches:
    def test_clears_compile_and_run_caches(self):
        warm_caches()
        clear_caches()
        assert not runner._COMPILE_CACHE
        assert not runner._RUN_CACHE

    def test_deactivates_leftover_telemetry_collector(self):
        collector = telemetry.Telemetry()
        telemetry.activate(collector)
        assert telemetry.current() is collector
        clear_caches()
        assert telemetry.current() is None

    def test_clears_the_service_result_cache_too(self):
        from repro.service.cache import ResultCache

        cache = ResultCache(max_entries=4)
        cache.put("key", "bound", {"v": 1})
        warm_caches()
        clear_caches()
        assert len(cache) == 0
        assert not runner._COMPILE_CACHE

    def test_reset_does_not_close_inherited_trace_handle(self, tmp_path):
        # reset() must detach the durable log's handle without closing
        # it: after a fork the child shares the parent's file
        # descriptor, and closing it would corrupt the parent's trace.
        trace = tmp_path / "trace.jsonl"
        collector = telemetry.Telemetry(trace_path=str(trace))
        telemetry.activate(collector)
        collector.emit("probe")  # the append handle opens lazily
        handle = collector._trace_log._handle
        assert handle is not None
        clear_caches()
        assert collector._trace_log is None
        assert not handle.closed
        handle.close()


class TestForkIsolation:
    def test_forked_child_starts_with_cold_caches(self):
        warm_caches()
        pid = os.fork()
        if pid == 0:
            # Child: the at-fork hook must have cleared everything the
            # parent warmed.  Exit codes communicate the verdict.
            status = (
                0
                if not runner._COMPILE_CACHE
                and not runner._RUN_CACHE
                and telemetry.current() is None
                else 1
            )
            os._exit(status)
        _, wait_status = os.waitpid(pid, 0)
        assert os.WIFEXITED(wait_status)
        assert os.WEXITSTATUS(wait_status) == 0
        # ... and the parent's caches are untouched by the fork.
        assert runner._COMPILE_CACHE and runner._RUN_CACHE

    def test_forked_child_inherits_no_active_collector(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        collector = telemetry.Telemetry(trace_path=str(trace))
        telemetry.activate(collector)
        try:
            pid = os.fork()
            if pid == 0:
                os._exit(0 if telemetry.current() is None else 1)
            _, wait_status = os.waitpid(pid, 0)
            assert os.WEXITSTATUS(wait_status) == 0
            # The parent's collector survives the fork and can still
            # write to its trace handle.
            assert telemetry.current() is collector
            collector.emit("probe")
        finally:
            telemetry.deactivate()
        assert "probe" in trace.read_text()
