"""Synthetic loop generator tests (deterministic part)."""

import random

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.machine import Simulator
from repro.workloads import GeneratedLoop, generate_loop


def run_generated(generated: GeneratedLoop, data_seed=1234):
    compiled = compile_kernel(generated.source, "generated")
    sim = Simulator(compiled.program)
    data = generated.make_data(random.Random(data_seed))
    for name, values in compiled.initial_data(data).items():
        sim.load_symbol(name, values)
    sim.memory.load_array(
        compiled.scalar_word_offset("n"),
        np.asarray([float(generated.n)]),
    )
    for name, value in generated.scalars.items():
        sim.memory.load_array(
            compiled.scalar_word_offset(name), np.asarray([value])
        )
    sim.run()
    return compiled, sim, data


class TestDeterminism:
    def test_same_seed_same_loop(self):
        assert generate_loop(7).source == generate_loop(7).source

    def test_different_seeds_differ(self):
        sources = {generate_loop(seed).source for seed in range(20)}
        assert len(sources) > 10


class TestGeneratedShapes:
    def test_source_parses_and_compiles(self):
        for seed in range(10):
            generated = generate_loop(seed)
            compiled = compile_kernel(generated.source, f"g{seed}")
            assert compiled.loops

    def test_reduction_flag_consistent(self):
        for seed in range(40):
            generated = generate_loop(seed)
            if generated.is_reduction:
                assert generated.output_array is None
                assert "ACC" in generated.source
                return
        pytest.fail("no reduction generated in 40 seeds")

    def test_reductions_can_be_disabled(self):
        for seed in range(40):
            assert not generate_loop(
                seed, allow_reduction=False
            ).is_reduction


@pytest.mark.parametrize("seed", range(12))
class TestAgainstReference:
    def test_matches_numpy(self, seed):
        generated = generate_loop(seed)
        compiled, sim, data = run_generated(generated)
        expected = generated.reference(data)
        if generated.is_reduction:
            actual = float(
                sim.memory.dump_array(
                    compiled.scalar_word_offset("ACC"), 1
                )[0]
            )
            assert np.isclose(actual, expected, rtol=1e-9)
        else:
            out = sim.dump_symbol(generated.output_array)
            assert np.allclose(
                out[4 : 4 + generated.n], expected, rtol=1e-9
            )
