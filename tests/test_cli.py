"""Command-line interface tests."""

import json

import pytest

from repro.cli import main


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "lfk1" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "lfk1"]) == 0
        out = capsys.readouterr().out
        assert "MACS hierarchy for LFK1" in out

    def test_compile(self, capsys):
        assert main(["compile", "lfk12"]) == 0
        out = capsys.readouterr().out
        assert "ld.l" in out and "vectorized" in out

    def test_run(self, capsys):
        assert main(["run", "lfk12"]) == 0
        out = capsys.readouterr().out
        assert "CPF" in out
        assert "verified" in out

    def test_run_no_verify(self, capsys):
        assert main(["run", "lfk12", "--no-verify"]) == 0
        assert "verified" not in capsys.readouterr().out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "t_MACS" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "bogus"]) == 2

    def test_unknown_kernel_reports_error(self, capsys):
        assert main(["run", "lfk5"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestLintCommand:
    def test_lint_kernel_is_clean(self, capsys):
        assert main(["lint", "lfk1"]) == 0
        out = capsys.readouterr().out
        assert "lfk1: 0 error(s)" in out

    def test_lint_all_workloads_clean(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        assert "sdot_long: 0 error(s)" in out

    def test_lint_resolves_excluded_kernels(self, capsys):
        assert main(["lint", "lfk5"]) == 0

    def test_lint_json_output(self, capsys):
        assert main(["lint", "lfk2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kernel"] == "lfk2"
        assert payload[0]["errors"] == 0
        for finding in payload[0]["findings"]:
            assert finding["severity"] in ("info", "warning", "error")

    def test_lint_min_severity_filters(self, capsys):
        # lfk2 carries INFO findings (the ivdep override pattern)
        assert main(["lint", "lfk2"]) == 0
        assert "[mem-overlap]" in capsys.readouterr().out
        assert main(["lint", "lfk2", "--min-severity", "warning"]) == 0
        assert "[mem-overlap]" not in capsys.readouterr().out

    def test_lint_bad_severity_rejected(self, capsys):
        assert main(["lint", "lfk1", "--min-severity", "bogus"]) == 2
        assert "unknown severity" in capsys.readouterr().err

    def test_lint_unknown_workload(self, capsys):
        assert main(["lint", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_strict_passes_clean_kernel(self, capsys):
        assert main(["compile", "lfk3", "--strict"]) == 0
        assert "ld.l" in capsys.readouterr().out

    def test_run_lint_gate_passes(self, capsys):
        assert main(["run", "lfk1", "--lint", "--no-verify"]) == 0
        assert "CPF" in capsys.readouterr().out

    def test_experiment_static_summary(self, capsys):
        assert main(["experiment", "static-summary"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out and "DIVERGE" not in out
