"""Command-line interface tests."""

import json

import pytest

from repro.cli import main
from repro.sweep import reset_sweep_defaults


@pytest.fixture(autouse=True)
def _isolate_sweep_defaults():
    """CLI --jobs/--trace install process-wide defaults; undo them."""
    yield
    reset_sweep_defaults()


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "lfk1" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "lfk1"]) == 0
        out = capsys.readouterr().out
        assert "MACS hierarchy for LFK1" in out

    def test_compile(self, capsys):
        assert main(["compile", "lfk12"]) == 0
        out = capsys.readouterr().out
        assert "ld.l" in out and "vectorized" in out

    def test_run(self, capsys):
        assert main(["run", "lfk12"]) == 0
        out = capsys.readouterr().out
        assert "CPF" in out
        assert "verified" in out

    def test_run_no_verify(self, capsys):
        assert main(["run", "lfk12", "--no-verify"]) == 0
        assert "verified" not in capsys.readouterr().out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "t_MACS" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "bogus"]) == 2

    def test_unknown_kernel_reports_error(self, capsys):
        assert main(["run", "lfk5"]) == 3
        assert "error" in capsys.readouterr().err

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestErrorPaths:
    def test_unknown_workload_name(self, capsys):
        assert main(["run", "nosuchkernel"]) == 3
        err = capsys.readouterr().err
        assert "error" in err and "nosuchkernel" in err

    def test_sweep_unknown_workload_name(self, capsys):
        assert main(["sweep", "nosuchkernel"]) == 3
        err = capsys.readouterr().err
        assert "nosuchkernel" in err

    def test_sweep_malformed_options_no_value(self, capsys):
        assert main(["sweep", "lfk1", "--options", "ivdep"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_sweep_malformed_options_unknown_key(self, capsys):
        assert main(["sweep", "lfk1", "--options", "bogus=1"]) == 2
        assert "unknown compiler option" in capsys.readouterr().err

    def test_sweep_malformed_options_bad_bool(self, capsys):
        assert main(
            ["sweep", "lfk1", "--options", "ivdep=maybe"]
        ) == 2
        assert "boolean" in capsys.readouterr().err

    def test_sweep_malformed_options_bad_int(self, capsys):
        assert main(
            ["sweep", "lfk1", "--options", "vector_length=wide"]
        ) == 2
        assert "integer" in capsys.readouterr().err

    def test_sweep_malformed_options_bad_enum(self, capsys):
        assert main(
            ["sweep", "lfk1", "--options", "reduction_style=zigzag"]
        ) == 2
        assert "partial-sums" in capsys.readouterr().err

    def test_sweep_options_conflicts_with_variants(self, capsys):
        assert main(
            ["sweep", "lfk1", "--variants", "reuse",
             "--options", "ivdep=true"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_unknown_variant(self, capsys):
        assert main(["sweep", "lfk1", "--variants", "bogus"]) == 2
        assert "unknown option variant" in capsys.readouterr().err

    def test_run_profile_conflicts_with_no_fastpath(self, capsys):
        assert main(
            ["run", "lfk1", "--profile", "--no-fastpath"]
        ) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_experiment_bad_jobs_value(self, capsys):
        assert main(["experiment", "figure1", "--jobs", "0"]) == 5
        assert "jobs" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_small_grid(self, capsys, tmp_path):
        out = tmp_path / "results.jsonl"
        assert main(
            ["sweep", "lfk1", "lfk12", "--variants", "default",
             "--out", str(out)]
        ) == 0
        captured = capsys.readouterr()
        assert "lfk1/default/base" in captured.out
        assert "tasks ok" in captured.err  # summary goes to stderr
        lines = [
            json.loads(line)
            for line in out.read_text().splitlines()
        ]
        assert [d["workload"] for d in lines] == ["lfk1", "lfk12"]
        assert all(d["status"] == "ok" for d in lines)

    def test_sweep_jobs_match_sequential(self, capsys, tmp_path):
        seq = tmp_path / "seq.jsonl"
        par = tmp_path / "par.jsonl"
        grid = ["lfk1", "lfk12", "--variants", "default,reuse"]
        assert main(["sweep", *grid, "--out", str(seq)]) == 0
        assert main(
            ["sweep", *grid, "--jobs", "2", "--out", str(par)]
        ) == 0
        assert seq.read_bytes() == par.read_bytes()

    def test_sweep_trace_feeds_summary(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["sweep", "lfk12", "--variants", "default",
             "--trace", str(trace)]
        ) == 0
        events = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert events[0]["event"] == "sweep_start"
        assert events[-1]["event"] == "sweep_end"
        assert "wall time" in capsys.readouterr().err

    def test_sweep_custom_options(self, capsys):
        assert main(
            ["sweep", "lfk1",
             "--options", "reuse_shifted_loads=true,vector_length=64"]
        ) == 0
        assert "lfk1/custom/base" in capsys.readouterr().out

    def test_sweep_deterministic_compile_errors_exit_zero(
        self, capsys
    ):
        # lfk4 cannot compile with two scalar registers; the cell is
        # reported as an error result, not an infrastructure failure
        assert main(
            ["sweep", "lfk4", "--variants", "tight-sregs"]
        ) == 0
        assert "error" in capsys.readouterr().out

    def test_experiment_with_jobs_flag(self, capsys):
        assert main(
            ["experiment", "ablation-refresh", "--jobs", "2"]
        ) == 0
        assert "t_p" in capsys.readouterr().out


class TestLintCommand:
    def test_lint_kernel_is_clean(self, capsys):
        assert main(["lint", "lfk1"]) == 0
        out = capsys.readouterr().out
        assert "lfk1: 0 error(s)" in out

    def test_lint_all_workloads_clean(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        assert "sdot_long: 0 error(s)" in out

    def test_lint_resolves_excluded_kernels(self, capsys):
        assert main(["lint", "lfk5"]) == 0

    def test_lint_json_output(self, capsys):
        assert main(["lint", "lfk2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kernel"] == "lfk2"
        assert payload[0]["errors"] == 0
        for finding in payload[0]["findings"]:
            assert finding["severity"] in ("info", "warning", "error")

    def test_lint_min_severity_filters(self, capsys):
        # lfk2 carries INFO findings (the ivdep override pattern)
        assert main(["lint", "lfk2"]) == 0
        assert "[mem-overlap]" in capsys.readouterr().out
        assert main(["lint", "lfk2", "--min-severity", "warning"]) == 0
        assert "[mem-overlap]" not in capsys.readouterr().out

    def test_lint_bad_severity_rejected(self, capsys):
        assert main(["lint", "lfk1", "--min-severity", "bogus"]) == 2
        assert "unknown severity" in capsys.readouterr().err

    def test_lint_unknown_workload(self, capsys):
        assert main(["lint", "nope"]) == 3
        assert "error" in capsys.readouterr().err

    def test_compile_strict_passes_clean_kernel(self, capsys):
        assert main(["compile", "lfk3", "--strict"]) == 0
        assert "ld.l" in capsys.readouterr().out

    def test_run_lint_gate_passes(self, capsys):
        assert main(["run", "lfk1", "--lint", "--no-verify"]) == 0
        assert "CPF" in capsys.readouterr().out

    def test_experiment_static_summary(self, capsys):
        assert main(["experiment", "static-summary"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out and "DIVERGE" not in out


class TestRequestCommand:
    def test_offline_bound_request(self, capsys):
        assert main(
            ["request", "bound", "--kernel", "lfk1", "--offline"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["kernel"] == "lfk1"
        assert payload["metrics"]["cpl"] > 0

    def test_offline_json_envelope(self, capsys):
        assert main(
            ["request", "bound", "--kernel", "lfk1", "--offline",
             "--json"]
        ) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["status"] == "ok"
        assert envelope["origin"] == "offline"
        assert envelope["key"].startswith("lfk1:bound:")

    def test_offline_analyze_matches_analyze_command(self, capsys):
        assert main(["analyze", "lfk1"]) == 0
        direct = capsys.readouterr().out
        assert main(
            ["request", "analyze", "--kernel", "lfk1", "--offline"]
        ) == 0
        served = capsys.readouterr().out
        assert served == direct

    def test_params_json_merges_with_shorthand(self, capsys):
        assert main(
            ["request", "lint", "--offline",
             "--params", '{"min_severity": "error"}',
             "--kernel", "lfk1"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0

    def test_unknown_kind_is_usage_error(self, capsys):
        assert main(
            ["request", "bogus", "--kernel", "lfk1", "--offline"]
        ) == 2
        assert "unknown request kind" in capsys.readouterr().err

    def test_unknown_kernel_is_usage_error(self, capsys):
        assert main(
            ["request", "bound", "--kernel", "nope", "--offline"]
        ) == 2

    def test_bad_params_json_is_usage_error(self, capsys):
        assert main(
            ["request", "bound", "--params", "{nope", "--offline"]
        ) == 2
        assert "valid JSON" in capsys.readouterr().err

    def test_missing_endpoint_is_usage_error(self, capsys):
        assert main(["request", "bound", "--kernel", "lfk1"]) == 2
        assert "--endpoint" in capsys.readouterr().err

    def test_unreachable_server_exits_6(self, capsys, tmp_path):
        assert main(
            ["request", "bound", "--kernel", "lfk1",
             "--endpoint", f"unix:{tmp_path}/absent.sock"]
        ) == 6
        assert "cannot connect" in capsys.readouterr().err

    def test_server_round_trip_matches_offline(self, capsys, tmp_path):
        from repro.service import ServiceConfig, start_in_thread

        thread = start_in_thread(
            ServiceConfig(socket_path=str(tmp_path / "cli.sock"),
                          workers=1)
        )
        try:
            endpoint = thread.endpoints[0]
            assert main(
                ["request", "mac", "--kernel", "lfk2",
                 "--endpoint", endpoint]
            ) == 0
            served = capsys.readouterr().out
            assert main(
                ["request", "mac", "--kernel", "lfk2", "--offline"]
            ) == 0
            offline = capsys.readouterr().out
            assert served == offline
        finally:
            thread.stop()


class TestFleetCommand:
    def test_record_then_replay_byte_identical(self, capsys,
                                               tmp_path):
        burst = str(tmp_path / "burst.ndjson")
        assert main(
            ["fleet", "record", "--out", burst,
             "--frames", "12", "--seed", "42"]
        ) == 0
        assert "recorded 12 frames" in capsys.readouterr().out
        bodies = str(tmp_path / "bodies.txt")
        assert main(
            ["fleet", "replay", "--burst", burst,
             "--replicas", "2", "--jobs", "2",
             "--out", bodies]
        ) == 0
        out = capsys.readouterr().out
        assert "replayed 12 frames on 2 replica(s)" in out
        assert "byte-identity: OK" in out
        with open(bodies, encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == 12

    def test_replay_generates_when_no_burst_given(self, capsys):
        assert main(
            ["fleet", "replay", "--replicas", "1",
             "--frames", "6", "--seed", "7", "--no-verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "replayed 6 frames on 1 replica(s)" in out
        assert "byte-identity" not in out

    def test_replay_rejects_missing_burst_file(self, capsys,
                                               tmp_path):
        assert main(
            ["fleet", "replay",
             "--burst", str(tmp_path / "nope.ndjson")]
        ) != 0
