"""Command-line interface tests."""

import pytest

from repro.cli import main


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "lfk1" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "lfk1"]) == 0
        out = capsys.readouterr().out
        assert "MACS hierarchy for LFK1" in out

    def test_compile(self, capsys):
        assert main(["compile", "lfk12"]) == 0
        out = capsys.readouterr().out
        assert "ld.l" in out and "vectorized" in out

    def test_run(self, capsys):
        assert main(["run", "lfk12"]) == 0
        out = capsys.readouterr().out
        assert "CPF" in out
        assert "verified" in out

    def test_run_no_verify(self, capsys):
        assert main(["run", "lfk12", "--no-verify"]) == 0
        assert "verified" not in capsys.readouterr().out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "t_MACS" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "bogus"]) == 2

    def test_unknown_kernel_reports_error(self, capsys):
        assert main(["run", "lfk5"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
